//! Counters describing injected faults and recovery-path activity.

/// What the fault engine injected and what the recovery paths did.
///
/// Maintained by the cell as faults fire; surfaced alongside the usual
/// cell metrics so chaos runs can be summarized in one table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped on the CN link by outage windows.
    pub cn_dropped_pkts: u64,
    /// Bytes dropped on the CN link by outage windows.
    pub cn_dropped_bytes: u64,
    /// Packets delayed by CN degradation windows.
    pub cn_delayed_pkts: u64,
    /// Segments lost to injected loss spikes (beyond configured residual
    /// loss).
    pub spiked_losses: u64,
    /// CQI reports suppressed by staleness windows.
    pub cqi_frozen_reports: u64,
    /// CQI reports replaced by corruption windows.
    pub cqi_corrupted_reports: u64,
    /// Radio-link failures entered.
    pub rlf_events: u64,
    /// RLC re-establishments performed (RLF and detach recovery).
    pub reestablishments: u64,
    /// UE detach events entered.
    pub detach_events: u64,
    /// UE re-attach events completed.
    pub reattach_events: u64,
    /// Buffer-shrink windows entered.
    pub buffer_shrink_events: u64,
    /// SDUs flushed by re-establishment or shrink shedding.
    pub flushed_sdus: u64,
    /// Bytes flushed by re-establishment or shrink shedding.
    pub flushed_bytes: u64,
    /// Flows evicted by flow-table admission control.
    pub flows_evicted: u64,
    /// Stalled flows kicked by the watchdog (forced retransmission).
    pub watchdog_kicks: u64,
}

impl FaultStats {
    /// Sum every counter (quick "anything happened?" signal).
    pub fn total_events(&self) -> u64 {
        self.rows().iter().map(|&(_, v)| v).sum()
    }

    /// Accumulate another cell's counters into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.cn_dropped_pkts += other.cn_dropped_pkts;
        self.cn_dropped_bytes += other.cn_dropped_bytes;
        self.cn_delayed_pkts += other.cn_delayed_pkts;
        self.spiked_losses += other.spiked_losses;
        self.cqi_frozen_reports += other.cqi_frozen_reports;
        self.cqi_corrupted_reports += other.cqi_corrupted_reports;
        self.rlf_events += other.rlf_events;
        self.reestablishments += other.reestablishments;
        self.detach_events += other.detach_events;
        self.reattach_events += other.reattach_events;
        self.buffer_shrink_events += other.buffer_shrink_events;
        self.flushed_sdus += other.flushed_sdus;
        self.flushed_bytes += other.flushed_bytes;
        self.flows_evicted += other.flows_evicted;
        self.watchdog_kicks += other.watchdog_kicks;
    }

    /// `(label, value)` rows for summary tables, in a stable order.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cn_dropped_pkts", self.cn_dropped_pkts),
            ("cn_dropped_bytes", self.cn_dropped_bytes),
            ("cn_delayed_pkts", self.cn_delayed_pkts),
            ("spiked_losses", self.spiked_losses),
            ("cqi_frozen_reports", self.cqi_frozen_reports),
            ("cqi_corrupted_reports", self.cqi_corrupted_reports),
            ("rlf_events", self.rlf_events),
            ("reestablishments", self.reestablishments),
            ("detach_events", self.detach_events),
            ("reattach_events", self.reattach_events),
            ("buffer_shrink_events", self.buffer_shrink_events),
            ("flushed_sdus", self.flushed_sdus),
            ("flushed_bytes", self.flushed_bytes),
            ("flows_evicted", self.flows_evicted),
            ("watchdog_kicks", self.watchdog_kicks),
        ]
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl FaultStats {
    /// Serialize the counters (checkpointing). Uses the same stable order
    /// as [`FaultStats::rows`].
    pub fn snap(&self, w: &mut SnapWriter) {
        for (_, v) in self.rows() {
            w.u64(v);
        }
    }

    /// Restore from [`FaultStats::snap`] output.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<FaultStats, SnapError> {
        Ok(FaultStats {
            cn_dropped_pkts: r.u64()?,
            cn_dropped_bytes: r.u64()?,
            cn_delayed_pkts: r.u64()?,
            spiked_losses: r.u64()?,
            cqi_frozen_reports: r.u64()?,
            cqi_corrupted_reports: r.u64()?,
            rlf_events: r.u64()?,
            reestablishments: r.u64()?,
            detach_events: r.u64()?,
            reattach_events: r.u64()?,
            buffer_shrink_events: r.u64()?,
            flushed_sdus: r.u64()?,
            flushed_bytes: r.u64()?,
            flows_evicted: r.u64()?,
            watchdog_kicks: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_row() {
        let mut a = FaultStats {
            rlf_events: 2,
            flushed_bytes: 100,
            ..FaultStats::default()
        };
        let b = FaultStats {
            rlf_events: 3,
            watchdog_kicks: 1,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.rlf_events, 5);
        assert_eq!(a.flushed_bytes, 100);
        assert_eq!(a.watchdog_kicks, 1);
        assert_eq!(a.total_events(), 106);
    }

    #[test]
    fn rows_cover_all_fields() {
        // Compile-time-ish guard: if a field is added, update rows().
        let s = FaultStats::default();
        assert_eq!(s.rows().len(), 15);
        assert_eq!(s.total_events(), 0);
    }
}
