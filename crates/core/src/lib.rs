//! # outran-core
//!
//! The paper's contribution, assembled: **OutRAN — a practical flow
//! scheduler for the Radio Access Network that co-optimizes Flow
//! Completion Time with the legacy cellular scheduler's objectives.**
//!
//! The mechanism spans three layers (Figure 5), each implemented in its
//! own substrate crate; this crate owns the *policy* and ties the pieces
//! together behind one configuration type:
//!
//! * **PDCP** (`outran-pdcp`) — five-tuple inspection and the per-flow
//!   sent-bytes table that drives MLFQ priorities (§4.2), plus delayed SN
//!   numbering & ciphering (§4.4).
//! * **RLC** (`outran-rlc`) — the per-UE MLFQ replacing the FIFO tx
//!   queue (intra-user flow scheduler, §4.2), segmented-SDU promotion,
//!   and AM-mode queue precedence (§4.4).
//! * **MAC** (`outran-mac`) — the ε-relaxed inter-user re-selection
//!   (Algorithm 1, §4.3).
//!
//! This crate adds:
//!
//! * [`OutRanConfig`] — every knob of the system with the paper's
//!   defaults (ε = 0.2, K = 4 queues, promotion on, delayed SN, no
//!   priority reset), plus builders that hand ready-made pieces to the
//!   cell simulator.
//! * [`thresholds`] — the MLFQ demotion-threshold optimizer. The paper
//!   "referred to the solution method presented in PIAS, which solves
//!   the optimization problem of finding the MLFQ thresholds … using the
//!   global optimization toolbox in SciPy" (§4.2); we implement the same
//!   queueing-theoretic objective with a deterministic coordinate-descent
//!   solver in pure Rust.
//! * [`reset`] — the §6.3 "Priority Boost" safety measure.

//!
//! # Example
//!
//! ```
//! use outran_core::{optimize_thresholds, OutRanConfig};
//! use outran_workload::FlowSizeDist;
//!
//! // The paper's default policy...
//! let cfg = OutRanConfig::default();
//! assert_eq!(cfg.epsilon, 0.2);
//! // ...and PIAS-style thresholds for a given flow-size distribution.
//! let cdf = FlowSizeDist::Websearch.cdf();
//! let alphas = optimize_thresholds(&cdf, 4, 0.6);
//! assert_eq!(alphas.len(), 3);
//! assert!(alphas.windows(2).all(|w| w[0] < w[1]));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reset;
pub mod thresholds;

use outran_mac::OutRanScheduler;
use outran_pdcp::{MlfqConfig, SnMode};
use outran_rlc::{AmConfig, UmConfig};
use outran_simcore::{Dur, Time};

pub use reset::PriorityReset;
pub use thresholds::optimize_thresholds;

/// Complete OutRAN configuration with the paper's defaults.
#[derive(Debug, Clone)]
pub struct OutRanConfig {
    /// Inter-user relaxation threshold ε (§4.3; default 0.2, "steady
    /// performance for ε < 0.4").
    pub epsilon: f64,
    /// MLFQ queue count K (§4.2: steady for K > 4; default 4).
    pub mlfq_queues: usize,
    /// Demotion thresholds; `None` = run [`optimize_thresholds`] against
    /// the LTE cellular distribution at build time.
    pub thresholds: Option<Vec<u64>>,
    /// §6.3 priority-reset period S (`None` = disabled, the default).
    pub reset_period: Option<Dur>,
    /// SN numbering mode; OutRAN requires [`SnMode::Delayed`] (§4.4).
    pub sn_mode: SnMode,
    /// Segmented-SDU promotion (§4.4; default on).
    pub promote_segments: bool,
    /// Priority push-out on buffer overflow (default on; off = the
    /// legacy drop-tail, an ablation knob).
    pub pushout: bool,
    /// RLC tx buffer capacity in SDUs (srsENB default 128).
    pub buffer_sdus: usize,
    /// Per-segment RLC/MAC header overhead in bytes.
    pub header_bytes: u32,
    /// PF fairness window T_f the underlying legacy scheduler uses.
    pub fairness_window: Dur,
    /// UM receiver reassembly window (t-Reassembly). The §4.4
    /// segmented-SDU promotion exists to keep partially-sent SDUs from
    /// overrunning this window.
    pub reassembly_window: Dur,
}

impl Default for OutRanConfig {
    fn default() -> Self {
        OutRanConfig {
            epsilon: OutRanScheduler::DEFAULT_EPSILON,
            mlfq_queues: 4,
            thresholds: None,
            reset_period: None,
            sn_mode: SnMode::Delayed,
            promote_segments: true,
            pushout: true,
            buffer_sdus: 128,
            header_bytes: 3,
            fairness_window: Dur::from_millis(1000),
            reassembly_window: Dur::from_millis(50),
        }
    }
}

impl OutRanConfig {
    /// The ε = 0 variant: intra-user scheduling only (used by the
    /// Fig 18b ablation and the Fig 7 ε = 0 comparison).
    pub fn intra_only() -> OutRanConfig {
        OutRanConfig {
            epsilon: 0.0,
            ..OutRanConfig::default()
        }
    }

    /// Resolve the MLFQ thresholds (explicit, or optimized for the LTE
    /// cellular distribution at 60 % load as the paper's defaults were).
    pub fn resolve_mlfq(&self) -> MlfqConfig {
        match &self.thresholds {
            Some(t) => MlfqConfig::new(t.clone()),
            None => {
                let cdf = outran_workload::FlowSizeDist::LteCellular.cdf();
                MlfqConfig::new(optimize_thresholds(&cdf, self.mlfq_queues, 0.6))
            }
        }
    }

    /// RLC UM configuration for this policy.
    pub fn um_config(&self) -> UmConfig {
        UmConfig {
            mlfq_levels: self.mlfq_queues,
            capacity_sdus: self.buffer_sdus,
            header_bytes: self.header_bytes,
            reassembly_window: self.reassembly_window,
            promote_segments: self.promote_segments,
            pushout: self.pushout,
        }
    }

    /// RLC AM configuration for this policy (§6.3 case study).
    pub fn am_config(&self) -> AmConfig {
        AmConfig {
            mlfq_levels: self.mlfq_queues,
            capacity_sdus: self.buffer_sdus,
            header_bytes: self.header_bytes.max(5),
            promote_segments: self.promote_segments,
            pushout: self.pushout,
            ..AmConfig::default()
        }
    }

    /// The MAC scheduler (Algorithm 1 over PF with T_f).
    pub fn mac_scheduler(&self, n_ues: usize, tti: Dur) -> OutRanScheduler {
        OutRanScheduler::over_pf(n_ues, self.fairness_window, tti, self.epsilon)
    }

    /// The priority-reset driver, if configured.
    pub fn priority_reset(&self, start: Time) -> Option<PriorityReset> {
        self.reset_period.map(|p| PriorityReset::new(p, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = OutRanConfig::default();
        assert!((c.epsilon - 0.2).abs() < 1e-12);
        assert_eq!(c.mlfq_queues, 4);
        assert_eq!(c.buffer_sdus, 128);
        assert_eq!(c.sn_mode, SnMode::Delayed);
        assert!(c.promote_segments);
        assert!(c.reset_period.is_none());
    }

    #[test]
    fn resolve_mlfq_has_k_minus_1_thresholds() {
        let c = OutRanConfig::default();
        let mlfq = c.resolve_mlfq();
        assert_eq!(mlfq.num_queues(), 4);
        assert_eq!(mlfq.thresholds.len(), 3);
        // Strictly increasing is enforced by MlfqConfig::new already;
        // sanity-check the range is sane for the LTE distribution.
        assert!(mlfq.thresholds[0] >= 1_000);
        assert!(mlfq.thresholds[0] <= 100_000);
    }

    #[test]
    fn explicit_thresholds_pass_through() {
        let c = OutRanConfig {
            thresholds: Some(vec![1_000, 2_000, 3_000]),
            ..OutRanConfig::default()
        };
        assert_eq!(c.resolve_mlfq().thresholds, vec![1_000, 2_000, 3_000]);
    }

    #[test]
    fn builders_are_consistent() {
        let c = OutRanConfig::default();
        let um = c.um_config();
        assert_eq!(um.mlfq_levels, 4);
        assert_eq!(um.capacity_sdus, 128);
        let am = c.am_config();
        assert_eq!(am.mlfq_levels, 4);
        let sched = c.mac_scheduler(8, Dur::from_millis(1));
        assert!((sched.epsilon() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn intra_only_is_epsilon_zero() {
        let c = OutRanConfig::intra_only();
        assert_eq!(c.epsilon, 0.0);
        let sched = c.mac_scheduler(4, Dur::from_millis(1));
        assert_eq!(sched.epsilon(), 0.0);
    }
}
