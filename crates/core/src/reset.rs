//! "Priority Boost" — periodic flow-state reset (§6.3).
//!
//! "One of them is 'Priority Boost', which is resetting the flow state of
//! every flow and moving all flows to the topmost queue after some time
//! period S. … when S = 500 ms, the long flow FCT remains almost the same
//! as the PF, and OutRAN still provides significant improvement for short
//! flow FCT. The period S can be tuned according to the network
//! operator's interest."

use outran_simcore::{Dur, Time};

/// Periodic reset driver. The cell loop asks [`PriorityReset::due`] each
/// TTI and, when it fires, calls `FlowTable::reset_priorities` on every
/// UE's flow table.
#[derive(Debug, Clone, Copy)]
pub struct PriorityReset {
    period: Dur,
    next_at: Time,
    /// Number of resets performed (diagnostics).
    pub resets: u64,
}

impl PriorityReset {
    /// Create with period `s`, first firing one period after `start`.
    pub fn new(s: Dur, start: Time) -> PriorityReset {
        assert!(s > Dur::ZERO, "reset period must be positive");
        PriorityReset {
            period: s,
            next_at: start + s,
            resets: 0,
        }
    }

    /// The configured period S.
    pub fn period(&self) -> Dur {
        self.period
    }

    /// Whether a reset is due at `now`; advances the schedule when it is.
    pub fn due(&mut self, now: Time) -> bool {
        if now >= self.next_at {
            // Skip any missed periods (coarse callers) but stay phase-locked.
            while self.next_at <= now {
                self.next_at += self.period;
            }
            self.resets += 1;
            true
        } else {
            false
        }
    }

    /// When the next reset will fire.
    pub fn next_at(&self) -> Time {
        self.next_at
    }

    /// Advance the schedule past `now`, counting **every** crossed period
    /// (unlike [`PriorityReset::due`], which coalesces missed periods into
    /// one reset). Returns how many periods fired.
    ///
    /// Virtual-time skipping uses this so that a span of idle TTIs books
    /// the same number of resets whether it is stepped densely or skipped
    /// in one jump.
    pub fn catch_up(&mut self, now: Time) -> u64 {
        let mut fired = 0u64;
        while self.next_at <= now {
            self.next_at += self.period;
            fired += 1;
        }
        self.resets += fired;
        fired
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl PriorityReset {
    /// Serialize the reset schedule (checkpointing). The period is
    /// config-derived and not written.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.time(self.next_at);
        w.u64(self.resets);
    }

    /// Overwrite this driver's schedule from [`PriorityReset::snap`]
    /// output, keeping the configured period.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_at = r.time()?;
        self.resets = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_period() {
        let mut r = PriorityReset::new(Dur::from_millis(500), Time::ZERO);
        assert!(!r.due(Time::from_millis(499)));
        assert!(r.due(Time::from_millis(500)));
        assert!(!r.due(Time::from_millis(501)));
        assert!(r.due(Time::from_millis(1000)));
        assert_eq!(r.resets, 2);
    }

    #[test]
    fn catches_up_after_gap() {
        let mut r = PriorityReset::new(Dur::from_millis(100), Time::ZERO);
        assert!(r.due(Time::from_millis(1000)));
        // Phase-locked: next at 1100, not 2000.
        assert_eq!(r.next_at(), Time::from_millis(1100));
        assert_eq!(r.resets, 1);
    }

    #[test]
    #[should_panic]
    fn zero_period_rejected() {
        let _ = PriorityReset::new(Dur::ZERO, Time::ZERO);
    }
}
