//! MLFQ demotion-threshold optimization (the PIAS method, §4.2).
//!
//! PIAS \[18, 19\] derives the demotion thresholds by minimising the
//! expected flow completion time of an M/G/1 system with K strict
//! priority queues, where a flow of size `s` sends its bytes in
//! `(α_{j−1}, α_j]` slices through queues of decreasing priority. We use
//! the same analytical objective:
//!
//! * per-queue load: `ρ_i = λ·E[min(S,α_i) − min(S,α_{i−1})]` expressed
//!   as a fraction of capacity (λ chosen so total load = the target);
//! * a flow finishing in queue `j` sees delay dominated by the work of
//!   queues 1..=j (priority M/G/1 approximation):
//!   `T_j ∝ 1 / (1 − Σ_{i≤j} ρ_i)` per byte of service;
//! * objective: `E_S[ Σ_{j : flow passes j} bytes_j · T_j ]`.
//!
//! The paper solved this with SciPy's global optimizer; a deterministic
//! log-grid coordinate descent reaches the same fixed point for these
//! smooth single-basin objectives and keeps the build dependency-free.

use outran_simcore::Empirical;

/// Expected bytes a flow sends between cumulative sizes `lo` and `hi`:
/// `E[min(S,hi) − min(S,lo)]`, computed by numerical integration over
/// the quantile function.
fn expected_bytes_between(cdf: &Empirical, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    let n = 600;
    let mut acc = 0.0;
    for i in 0..n {
        let p = (i as f64 + 0.5) / n as f64;
        let s = cdf.quantile(p);
        acc += (s.min(hi) - s.min(lo)).max(0.0);
    }
    acc / n as f64
}

/// The PIAS mean-delay objective for a threshold vector (lower = better).
pub fn objective(cdf: &Empirical, thresholds: &[f64], load: f64) -> f64 {
    let mean_size = cdf.mean();
    // λ per unit capacity so that Σρ = load.
    let lam = load / mean_size;
    let mut bounds = Vec::with_capacity(thresholds.len() + 2);
    bounds.push(0.0);
    bounds.extend_from_slice(thresholds);
    bounds.push(f64::INFINITY);
    // Per-queue loads.
    let k = bounds.len() - 1;
    let mut rho = Vec::with_capacity(k);
    for j in 0..k {
        rho.push(lam * expected_bytes_between(cdf, bounds[j], bounds[j + 1]));
    }
    // Cumulative delay factor and per-queue waiting time. A flow being
    // serviced in queue j progresses at 1/factor_j of the line rate
    // (higher-priority work preempts it), and each queue it enters costs
    // an M/G/1-style waiting term W_j = R·Σρ_{i≤j}/(1−Σρ_{i≤j}) with the
    // mean residual R of the flow-size distribution. The waiting term is
    // what penalises a bloated P1: *every* flow starts in P1, and 90 %
    // of flows are short, so their count dominates the mean FCT.
    let mut cum = 0.0;
    let mut delay_factor = Vec::with_capacity(k);
    let mut wait = Vec::with_capacity(k);
    let residual = mean_size / 2.0;
    for &r in &rho {
        cum = (cum + r).min(0.999);
        delay_factor.push(1.0 / (1.0 - cum));
        wait.push(residual * cum / (1.0 - cum));
    }
    // E_S[ Σ_{queues traversed} (W_j + bytes_j · factor_j) ] via quantiles.
    let n = 600;
    let mut acc = 0.0;
    for i in 0..n {
        let p = (i as f64 + 0.5) / n as f64;
        let s = cdf.quantile(p);
        for j in 0..k {
            let lo = bounds[j];
            let hi = bounds[j + 1];
            if s <= lo && j > 0 {
                break; // flow finished before reaching this queue
            }
            let bytes = (s.min(hi) - s.min(lo)).max(0.0);
            acc += wait[j] + bytes * delay_factor[j];
            if s <= hi {
                break;
            }
        }
    }
    acc / n as f64
}

/// Optimize `k − 1` demotion thresholds for a flow-size CDF at a target
/// load, by coordinate descent over a log-spaced grid. Deterministic.
pub fn optimize_thresholds(cdf: &Empirical, k: usize, load: f64) -> Vec<u64> {
    assert!(k >= 2, "need at least 2 queues for thresholds to exist");
    assert!(load > 0.0 && load < 1.0);
    // Search grid: log-spaced between the 5th and 99.9th percentile.
    let lo = cdf.quantile(0.05).max(64.0);
    let hi = cdf.quantile(0.999);
    let grid_n = 64;
    let grid: Vec<f64> = (0..grid_n)
        .map(|i| {
            let f = i as f64 / (grid_n - 1) as f64;
            (lo.ln() + f * (hi.ln() - lo.ln())).exp()
        })
        .collect();
    // Initial guess: equal quantile split.
    let mut th: Vec<f64> = (1..k)
        .map(|j| cdf.quantile(j as f64 / k as f64).max(lo))
        .collect();
    th.sort_by(|a, b| a.total_cmp(b));
    dedup_increasing(&mut th);

    let mut best = objective(cdf, &th, load);
    for _round in 0..8 {
        let mut improved = false;
        for idx in 0..th.len() {
            let lo_bound = if idx == 0 { 0.0 } else { th[idx - 1] };
            let hi_bound = if idx + 1 < th.len() {
                th[idx + 1]
            } else {
                f64::INFINITY
            };
            let mut best_here = th[idx];
            for &g in &grid {
                if g <= lo_bound || g >= hi_bound {
                    continue;
                }
                let mut cand = th.clone();
                cand[idx] = g;
                let v = objective(cdf, &cand, load);
                if v < best - 1e-9 {
                    best = v;
                    best_here = g;
                    improved = true;
                }
            }
            th[idx] = best_here;
        }
        if !improved {
            break;
        }
    }
    th.iter()
        .map(|&t| t.round() as u64)
        .scan(0u64, |prev, t| {
            // Enforce strict monotonicity after rounding.
            let t = t.max(*prev + 1);
            *prev = t;
            Some(t)
        })
        .collect()
}

fn dedup_increasing(v: &mut [f64]) {
    for i in 1..v.len() {
        if v[i] <= v[i - 1] {
            v[i] = v[i - 1] * 1.5;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outran_workload::FlowSizeDist;

    #[test]
    fn thresholds_strictly_increasing() {
        let cdf = FlowSizeDist::LteCellular.cdf();
        let th = optimize_thresholds(&cdf, 4, 0.6);
        assert_eq!(th.len(), 3);
        for w in th.windows(2) {
            assert!(w[0] < w[1], "{th:?}");
        }
    }

    #[test]
    fn optimizer_beats_naive_split() {
        let cdf = FlowSizeDist::LteCellular.cdf();
        let th = optimize_thresholds(&cdf, 4, 0.6);
        let thf: Vec<f64> = th.iter().map(|&t| t as f64).collect();
        let opt = objective(&cdf, &thf, 0.6);
        // Naive: equal log-split of the size range.
        let naive = vec![1_000.0, 31_623.0, 1_000_000.0];
        let naive_obj = objective(&cdf, &naive, 0.6);
        assert!(
            opt <= naive_obj * 1.001,
            "optimized {opt} must beat naive {naive_obj}"
        );
    }

    #[test]
    fn first_threshold_protects_short_flows() {
        // With 90% of flows < 35.9KB, the first demotion must happen at
        // a size that lets typical short flows finish in P1/P2.
        let cdf = FlowSizeDist::LteCellular.cdf();
        let th = optimize_thresholds(&cdf, 4, 0.6);
        // 90 % of flows are < 35.9 KB; a first demotion anywhere between
        // a few hundred bytes and ~150 KB keeps them in the top queues
        // (PIAS's own thresholds for heavy-tailed web workloads sit in
        // the tens-of-KB to ~1 MB range depending on load).
        assert!(
            (500..=150_000).contains(&th[0]),
            "alpha_1 = {} out of expected band",
            th[0]
        );
    }

    #[test]
    fn deterministic() {
        let cdf = FlowSizeDist::LteCellular.cdf();
        assert_eq!(
            optimize_thresholds(&cdf, 4, 0.6),
            optimize_thresholds(&cdf, 4, 0.6)
        );
    }

    #[test]
    fn objective_increases_with_load() {
        let cdf = FlowSizeDist::LteCellular.cdf();
        let th = vec![10_000.0, 100_000.0, 1_000_000.0];
        assert!(objective(&cdf, &th, 0.8) > objective(&cdf, &th, 0.3));
    }

    #[test]
    fn works_for_other_distributions() {
        for d in [FlowSizeDist::MirageMobileApp, FlowSizeDist::Websearch] {
            let cdf = d.cdf();
            let th = optimize_thresholds(&cdf, 4, 0.5);
            assert_eq!(th.len(), 3);
            for w in th.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn k2_single_threshold() {
        let cdf = FlowSizeDist::LteCellular.cdf();
        let th = optimize_thresholds(&cdf, 2, 0.6);
        assert_eq!(th.len(), 1);
    }

    #[test]
    #[should_panic]
    fn k1_rejected() {
        let cdf = FlowSizeDist::LteCellular.cdf();
        let _ = optimize_thresholds(&cdf, 1, 0.6);
    }
}
