//! Fixture-driven tests for every lint rule, the lexer's
//! false-positive traps, suppression hygiene, and a clean-pass run
//! over the real workspace (the same gate CI enforces).

#![forbid(unsafe_code)]

use std::path::Path;

use outran_lint::{analyze_source, find_workspace_root, lint_workspace, RuleId};

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Analyze a fixture as if it lived at `rel` inside the workspace,
/// with the full catalog + stale-suppression checking, and return the
/// `(line, rule)` pairs that fired.
fn run_at(rel: &str, name: &str) -> Vec<(usize, RuleId)> {
    analyze_source(rel, &fixture(name), &RuleId::CATALOG, true)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

const SIM_LIB: &str = "crates/ran/src/fixture.rs";

#[test]
fn d1_wall_clock_fires() {
    let got = run_at(SIM_LIB, "d1_wall_clock.rs");
    assert_eq!(got, vec![(5, RuleId::D1), (9, RuleId::D1)]);
}

#[test]
fn d1_allowlisted_in_bench_and_tests() {
    let src = fixture("d1_wall_clock.rs");
    assert!(analyze_source("crates/bench/src/bin/x.rs", &src, &[RuleId::D1], false).is_empty());
    assert!(analyze_source("crates/cli/src/lib.rs", &src, &[RuleId::D1], false).is_empty());
    assert!(analyze_source("crates/ran/tests/x.rs", &src, &[RuleId::D1], false).is_empty());
}

#[test]
fn d2_hash_iteration_fires() {
    let got = run_at(SIM_LIB, "d2_hash_iter.rs");
    assert_eq!(
        got,
        vec![
            (11, RuleId::D2),
            (16, RuleId::D2),
            (21, RuleId::D2),
            (23, RuleId::D2),
            (27, RuleId::D2),
        ]
    );
}

#[test]
fn d2_is_scoped_to_sim_crates() {
    let src = fixture("d2_hash_iter.rs");
    assert!(analyze_source("crates/cli/src/lib.rs", &src, &[RuleId::D2], false).is_empty());
    assert!(analyze_source("crates/lint/src/x.rs", &src, &[RuleId::D2], false).is_empty());
}

#[test]
fn d3_ambient_rng_fires() {
    let got = run_at(SIM_LIB, "d3_ambient_rng.rs");
    assert_eq!(
        got,
        vec![(3, RuleId::D3), (8, RuleId::D3), (12, RuleId::D3)]
    );
}

#[test]
fn d4_pop_due_drain_fires() {
    let got = run_at(SIM_LIB, "d4_pop_due.rs");
    assert_eq!(got, vec![(3, RuleId::D4), (9, RuleId::D4)]);
}

#[test]
fn d5_panic_fires() {
    let got = run_at(SIM_LIB, "d5_panic.rs");
    assert_eq!(
        got,
        vec![(3, RuleId::D5), (7, RuleId::D5), (12, RuleId::D5)]
    );
}

#[test]
fn d5_does_not_apply_outside_sim_crates() {
    let src = fixture("d5_panic.rs");
    assert!(analyze_source("crates/bench/src/lib.rs", &src, &[RuleId::D5], false).is_empty());
}

#[test]
fn d6_stub_markers_fire() {
    let got = run_at(SIM_LIB, "d6_stubs.rs");
    assert_eq!(
        got,
        vec![
            (2, RuleId::D6),
            (6, RuleId::D6),
            (10, RuleId::D6),
            (13, RuleId::D6),
            (16, RuleId::D6),
        ]
    );
}

#[test]
fn d7_missing_forbid_fires_on_crate_roots_only() {
    let src = fixture("d7_missing_forbid.rs");
    let roots = [
        "crates/phy/src/lib.rs",
        "crates/cli/src/main.rs",
        "crates/bench/src/bin/fig1.rs",
        "crates/bench/benches/b.rs",
        "examples/demo.rs",
        "src/lib.rs",
    ];
    for rel in roots {
        let got = analyze_source(rel, &src, &[RuleId::D7], false);
        assert_eq!(got.len(), 1, "{rel} should need the forbid attribute");
        assert_eq!(got[0].rule, RuleId::D7);
    }
    // Non-root modules are exempt.
    assert!(analyze_source("crates/phy/src/harq.rs", &src, &[RuleId::D7], false).is_empty());
    assert!(analyze_source("crates/ran/tests/t.rs", &src, &[RuleId::D7], false).is_empty());
}

#[test]
fn d8_stage_pub_fields_fire() {
    // Scope to D8 only: the fixture's stage structs have no snapshot
    // impls, so the full catalog would also raise D9 on them.
    let src = fixture("d8_stage_fields.rs");
    let got: Vec<(usize, RuleId)> = analyze_source(
        "crates/ran/src/stages/fixture.rs",
        &src,
        &[RuleId::D8],
        false,
    )
    .into_iter()
    .map(|d| (d.line, d.rule))
    .collect();
    assert_eq!(got, vec![(4, RuleId::D8), (5, RuleId::D8), (9, RuleId::D8)]);
}

#[test]
fn d8_is_scoped_to_stage_files() {
    let src = fixture("d8_stage_fields.rs");
    assert!(analyze_source("crates/ran/src/cell.rs", &src, &[RuleId::D8], false).is_empty());
    assert!(analyze_source("crates/mac/src/lib.rs", &src, &[RuleId::D8], false).is_empty());
}

#[test]
fn d9_snapshot_coverage_fires() {
    let got = run_at(
        "crates/ran/src/stages/fixture.rs",
        "d9_snapshot_coverage.rs",
    );
    assert_eq!(got, vec![(5, RuleId::D9), (23, RuleId::D9)]);
}

#[test]
fn d9_flags_stage_file_with_no_snapshot_impl() {
    let src = "struct LonelyStage {\n    state: u64,\n}\n";
    let got = analyze_source("crates/ran/src/stages/x.rs", src, &[RuleId::D9], false);
    assert_eq!(got.len(), 1);
    assert_eq!((got[0].line, got[0].rule), (1, RuleId::D9));
    assert!(
        got[0].message.contains("no `fn snap`"),
        "{}",
        got[0].message
    );
}

#[test]
fn d9_is_scoped_to_stage_files() {
    let src = fixture("d9_snapshot_coverage.rs");
    assert!(analyze_source("crates/ran/src/cell.rs", &src, &[RuleId::D9], false).is_empty());
    assert!(analyze_source("crates/rlc/src/lib.rs", &src, &[RuleId::D9], false).is_empty());
}

#[test]
fn lexer_traps_stay_clean() {
    let got = run_at(SIM_LIB, "traps_clean.rs");
    assert_eq!(got, vec![], "literal/comment contents must never fire");
}

#[test]
fn valid_suppressions_silence_and_are_not_stale() {
    let got = run_at(SIM_LIB, "suppressed_ok.rs");
    assert_eq!(got, vec![]);
}

#[test]
fn suppression_hygiene_failures() {
    let got = run_at(SIM_LIB, "suppressed_bad.rs");
    assert_eq!(
        got,
        vec![
            (4, RuleId::L100),
            (5, RuleId::D5),
            (9, RuleId::L101),
            (14, RuleId::L102),
        ]
    );
}

#[test]
fn rule_filter_disables_other_rules() {
    let src = fixture("d5_panic.rs");
    let got = analyze_source(SIM_LIB, &src, &[RuleId::D1], false);
    assert!(
        got.is_empty(),
        "D5 findings must not appear under --rule d1"
    );
}

/// The real workspace must lint clean — the same invariant the CI
/// `lint` job enforces, kept inside `cargo test` so a violation fails
/// fast locally too.
#[test]
fn workspace_is_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("workspace walk");
    assert!(report.checked_files > 80, "walk found too few files");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.is_clean(),
        "workspace has lint diagnostics:\n{}",
        rendered.join("\n")
    );
}
