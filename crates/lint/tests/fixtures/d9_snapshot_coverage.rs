// D9 fixture: stage-struct fields must be covered by the file's
// snap/load_snap impls.
struct CoveredStage {
    written: u64,
    forgotten: u64,
    also_written: u64,
    scratch: Vec<u64>, // outran-lint: allow(D9) -- per-TTI scratch, never read across TTIs
}

impl CoveredStage {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.written);
    }

    fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.written = r.u64()?;
        self.also_written = r.u64()?;
        Ok(())
    }
}

struct OrphanStage {
    state: u64,
}

struct PlainHelper {
    ignored: u64,
}
