// Fixture: every rule pattern hidden where the lexer must NOT see it.
// Analyzed as sim-crate library code; expected diagnostics: none.

// A line comment mentioning Instant::now() and thread_rng and .unwrap()
// and panic! and SystemTime and todo!() — comments never trip code rules.

/* Block comment: x.unwrap(); rand::random(); q.pop_due(now); HashMap
   /* nested: still a comment — Instant::now() */
   still inside the outer comment: .expect("boom") */

pub fn string_literals() -> &'static str {
    let a = "Instant::now() thread_rng .unwrap() panic! SystemTime";
    let b = "escaped quote \" then .expect(\"x\") still in string";
    let c = r#"raw string: rand::random() and "quoted" pop_due("#;
    let d = r##"deeper raw: from_entropy() "# still raw "# here"##;
    let e = b"byte string with .unwrap() inside";
    a
}

pub fn char_literals_and_lifetimes<'a>(x: &'a str) -> &'a str {
    let quote = '"'; // a double-quote char must not open a string
    let escaped = '\''; // escaped single quote
    let newline = '\n';
    let plus = '+';
    x
}

pub fn doc_attr(s: &str) -> usize {
    // The word unwrap_or must not match the bare-unwrap pattern:
    s.len().checked_sub(1).unwrap_or(0)
}
