//! D8 fixture: stage structs must keep their fields private.

pub struct IngressStage {
    pub open_flows: u64,
    pub(crate) injected_bytes: u64,
    dropped_bytes: u64,
}

struct TupleStage(pub u64, u32);

/// Not a `*Stage` struct: pub fields are a typed pipeline message.
pub struct TtiSummary {
    pub used_rbs: u32,
}

pub struct DeliveryStage {
    completions: Vec<u64>,
    delivered_bytes: u64,
}
