// Fixture: ambient randomness. Never compiled.
pub fn bad_thread_rng() -> u32 {
    let mut rng = rand::thread_rng(); // line 3: D3
    0
}

pub fn bad_random() -> f64 {
    rand::random() // line 8: D3
}

pub fn bad_entropy() {
    let _rng = SmallRng::from_entropy(); // line 12: D3
}

pub fn seeded_is_fine(seed: u64) -> Rng {
    Rng::new(seed) // no diagnostic
}
