// Fixture: wall-clock reads in sim code. Never compiled.
use std::time::Instant;

pub fn bad_now() -> std::time::Instant {
    Instant::now() // line 5: D1
}

pub fn bad_epoch() -> u64 {
    let t = std::time::SystemTime::now(); // line 9: D1
    0
}

#[cfg(test)]
mod tests {
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
