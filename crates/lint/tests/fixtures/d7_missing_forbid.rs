//! Fixture: a crate root without the unsafe-code forbid. Never compiled.

pub fn item() {}
