// Fixture: panics in sim library code. Never compiled.
pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // line 3: D5
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("present") // line 7: D5
}

pub fn bad_panic(x: u32) {
    if x > 9 {
        panic!("x too big"); // line 12: D5
    }
}

pub fn total_is_fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0) // no diagnostic: unwrap_or is total
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
    }
}
