// Fixture: pop_due drain discipline. Never compiled.
pub fn bad_single_pop(q: &mut EventQueue, now: Time) {
    if let Some((_, ev)) = q.pop_due(now) { // line 3: D4
        handle(ev);
    }
}

pub fn bad_let_pop(q: &mut EventQueue, now: Time) {
    let first = q.pop_due(now); // line 9: D4
}

pub fn good_drain(q: &mut EventQueue, now: Time) {
    while let Some((_, ev)) = q.pop_due(now) {
        handle(ev);
    }
}

pub fn good_split_drain(q: &mut EventQueue, now: Time) {
    while let Some((_, ev)) =
        q.pop_due(now)
    {
        handle(ev);
    }
}

impl EventQueue {
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, Ev)> {
        None // definition itself is not a call site
    }
}
