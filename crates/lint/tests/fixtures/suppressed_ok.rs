// Fixture: correctly reason-suppressed violations. Expected: clean.

pub fn profiled() -> u64 {
    // outran-lint: allow(d1) -- profiling hook, measurement only
    let t = std::time::Instant::now();
    0
}

pub fn trailing_form(x: Option<u32>) -> u32 {
    x.unwrap() // outran-lint: allow(d5) -- guarded by caller invariant
}

pub fn multi_rule(x: Option<u32>) -> u32 {
    // outran-lint: allow(d5,d1) -- both fire on the next line in this fixture
    x.expect("x").wrapping_add(std::time::Instant::now().elapsed().as_secs() as u32)
}
