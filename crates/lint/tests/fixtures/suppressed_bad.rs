// Fixture: suppression-hygiene failures.

pub fn no_reason(x: Option<u32>) -> u32 {
    // outran-lint: allow(d5)
    x.unwrap() // line 5: D5 still fires — reasonless directive is void (plus L100 on line 4)
}

pub fn unknown_rule(x: Option<u32>) -> u32 {
    // outran-lint: allow(d99) -- this rule does not exist; line 9: L101
    x.unwrap_or(0)
}

pub fn stale(x: u32) -> u32 {
    // outran-lint: allow(d5) -- nothing to suppress here; line 14: L102
    x + 1
}
