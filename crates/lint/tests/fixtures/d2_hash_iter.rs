// Fixture: hash-order iteration in a sim crate. Never compiled.
use std::collections::{HashMap, HashSet};

pub struct State {
    flows: HashMap<u64, u32>,
    seen: HashSet<u64>,
}

impl State {
    pub fn bad_values(&self) -> u32 {
        self.flows.values().sum() // line 11: D2
    }

    pub fn bad_split_chain(&self) -> usize {
        self.flows
            .keys() // line 16: D2 (receiver on previous line)
            .count()
    }

    pub fn bad_for_loop(&self) {
        for f in &self.seen {} // line 21: D2
        let seen = &self.seen;
        for f in seen {} // line 23: D2
    }

    pub fn bad_retain(&mut self) {
        self.flows.retain(|_, v| *v > 0); // line 27: D2
    }

    pub fn keyed_access_is_fine(&self) -> Option<&u32> {
        self.flows.get(&1) // no diagnostic: keyed ops are deterministic
    }
}
