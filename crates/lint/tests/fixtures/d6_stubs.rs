// Fixture: stub markers in library code. Never compiled.
#[allow(dead_code)] // line 2: D6
pub fn dead() {}

pub fn stub() {
    todo!() // line 6: D6
}

pub fn other_stub() {
    unimplemented!("later") // line 10: D6
}

// TODO: finish this — line 13: D6
pub fn noted() {}

// FIXME handle overflow — line 16: D6
pub fn broken() {}
