//! `outran-lint` — workspace-local determinism & simulation-soundness
//! static analyzer, in the spirit of rustc's `tidy` pass.
//!
//! Every result this reproduction publishes rests on bit-identical
//! determinism: parallel sweeps and event-driven idle skipping are
//! trusted only because replays fingerprint-identically. This crate
//! machine-checks the invariants that property depends on, on every
//! commit, as structured diagnostics with `file:line` positions, rule
//! IDs, human and JSON output, and reason-carrying inline suppressions
//! that are themselves linted. It is std-only by construction (the
//! workspace builds without crates.io access), so the Rust surface
//! scanning is a small hand-rolled lexer rather than `syn`.
//!
//! The rule catalog lives in [`rules::RuleId`]; the rationale per rule
//! is documented in DESIGN.md § "Static analysis".

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{analyze_source, classify, Diagnostic, RuleId};

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "compat", "fixtures"];

/// Collect all lintable `.rs` files under `root`, workspace-relative.
///
/// Skips build output, vendored compat shims (third-party API surface
/// not held to in-house rules), and this crate's own known-bad test
/// fixtures. Results are sorted so diagnostics order is stable across
/// filesystems.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint result for a set of files.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of files scanned.
    pub checked_files: usize,
    /// All findings, ordered by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render as a JSON object (hand-rolled: std-only crate).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"checked_files\": {},\n", self.checked_files));
        s.push_str(&format!(
            "  \"diagnostic_count\": {},\n",
            self.diagnostics.len()
        ));
        s.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
                json_escape(&d.path),
                d.line,
                d.rule.name(),
                json_escape(&d.message),
                if i + 1 < self.diagnostics.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lint `files` (absolute paths under `root`) with the given rule set.
/// `check_stale` enables the stale-suppression meta-rule L102 and
/// should be false when `enabled` is a filtered subset.
pub fn lint_files(
    root: &Path,
    files: &[PathBuf],
    enabled: &[RuleId],
    check_stale: bool,
) -> std::io::Result<Report> {
    let mut diagnostics = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        diagnostics.extend(rules::analyze_source(&rel, &src, enabled, check_stale));
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(Report {
        checked_files: files.len(),
        diagnostics,
    })
}

/// Lint the whole workspace rooted at `root` with every catalog rule.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    lint_files(root, &files, &RuleId::CATALOG, true)
}

/// Locate the workspace root: walk up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn finds_workspace_root_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates").is_dir());
    }
}
