//! The rule catalog and the per-file analysis engine.
//!
//! Every rule reports structured [`Diagnostic`]s with a stable
//! [`RuleId`]; all of them run on the masked view produced by
//! [`crate::lexer::mask`], so literal and comment contents can never
//! trigger a code rule. See DESIGN.md § "Static analysis" for the
//! rationale per rule.

use crate::lexer::{mask, MaskedFile};

/// Stable identifiers for the rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Wall-clock reads (`Instant::now`, `SystemTime`) outside the
    /// profiling allowlist.
    D1,
    /// `HashMap`/`HashSet` iteration in sim crates.
    D2,
    /// Ambient (unseeded) randomness.
    D3,
    /// `EventQueue`-style `pop_due` used outside a `while let` drain.
    D4,
    /// `unwrap()`/`expect()`/`panic!` in non-test sim library code.
    D5,
    /// Stub markers left in library code: `#[allow(dead_code)]`,
    /// `todo!`, `unimplemented!`, and stale to-do/fix-me comments.
    D6,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    D7,
    /// Stage structs (`*Stage` under `crates/ran/src/stages/`) with
    /// non-private fields: stage state crosses stage boundaries only
    /// through the typed pipeline messages, never by reaching into
    /// another stage's struct.
    D8,
    /// Stage struct fields not covered by the file's checkpoint
    /// (`fn snap` / `fn load_snap`) impls: a field added to a stage but
    /// forgotten in its snapshot silently diverges resumed runs.
    D9,
    /// Suppression directive without a written reason.
    L100,
    /// Suppression directive naming an unknown rule.
    L101,
    /// Suppression directive that suppressed nothing (stale).
    L102,
}

impl RuleId {
    /// All catalog rules (excludes the `L1xx` suppression-hygiene
    /// meta-rules, which are always on).
    pub const CATALOG: [RuleId; 9] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::D6,
        RuleId::D7,
        RuleId::D8,
        RuleId::D9,
    ];

    /// Canonical name, e.g. `"D2"`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
            RuleId::D7 => "D7",
            RuleId::D8 => "D8",
            RuleId::D9 => "D9",
            RuleId::L100 => "L100",
            RuleId::L101 => "L101",
            RuleId::L102 => "L102",
        }
    }

    /// Parse a rule name, case-insensitively.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim().to_ascii_uppercase().as_str() {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "D3" => Some(RuleId::D3),
            "D4" => Some(RuleId::D4),
            "D5" => Some(RuleId::D5),
            "D6" => Some(RuleId::D6),
            "D7" => Some(RuleId::D7),
            "D8" => Some(RuleId::D8),
            "D9" => Some(RuleId::D9),
            "L100" => Some(RuleId::L100),
            "L101" => Some(RuleId::L101),
            "L102" => Some(RuleId::L102),
            _ => None,
        }
    }
}

/// One finding: `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Crates whose state feeds replay fingerprints: determinism rules
/// (D2) and the no-panic contract (D5) apply to their library code.
pub const SIM_CRATES: [&str; 11] = [
    "simcore",
    "phy",
    "pdcp",
    "rlc",
    "mac",
    "transport",
    "workload",
    "metrics",
    "core",
    "ran",
    "faults",
];

/// Crates allowed to read the wall clock (measurement front-ends).
pub const WALL_CLOCK_ALLOWED_CRATES: [&str; 2] = ["bench", "cli"];

/// How a file participates in the rule matrix, derived from its
/// workspace-relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate directory name under `crates/`, or `"outran"` for the
    /// facade package at the workspace root.
    pub crate_name: String,
    /// Library code of a sim crate (D2/D5 scope).
    pub is_sim_lib: bool,
    /// Integration tests, benches, examples: measurement/demo code,
    /// exempt from D1/D4/D5/D6.
    pub is_testish: bool,
    /// Wall-clock allowlisted (bench/cli crates or testish files).
    pub wall_clock_ok: bool,
    /// File is a crate root that D7 requires to carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// Classify a workspace-relative path (always with `/` separators).
pub fn classify(rel: &str) -> FileClass {
    let crate_name = if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("").to_string()
    } else {
        "outran".to_string()
    };
    let is_testish = rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.contains("/benches/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/");
    let in_src = rel.contains("/src/") || rel.starts_with("src/");
    let is_sim_lib = (SIM_CRATES.contains(&crate_name.as_str()) || crate_name == "outran")
        && in_src
        && !is_testish;
    let wall_clock_ok = WALL_CLOCK_ALLOWED_CRATES.contains(&crate_name.as_str()) || is_testish;

    let last = rel.rsplit('/').next().unwrap_or(rel);
    let is_crate_root = rel == "src/lib.rs"
        || rel == "src/main.rs"
        || (rel.starts_with("crates/")
            && (rel.ends_with("/src/lib.rs")
                || rel.ends_with("/src/main.rs")
                || rel.contains("/src/bin/")
                || rel.contains("/benches/")))
        || (rel.starts_with("examples/") && last.ends_with(".rs"));

    FileClass {
        crate_name,
        is_sim_lib,
        is_testish,
        wall_clock_ok,
        is_crate_root,
    }
}

/// A parsed suppression: the directive marker followed by
/// `allow(<rules>)`, a `--` separator, and a mandatory reason.
#[derive(Debug, Clone)]
struct Suppression {
    line: usize,
    rules: Vec<RuleId>,
    used: bool,
}

const DIRECTIVE: &str = "outran-lint:";

/// Extract suppression directives from a file's comments, emitting
/// hygiene diagnostics (L100 missing reason, L101 unknown rule) in
/// place.
fn parse_suppressions(
    rel: &str,
    masked: &MaskedFile,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (line, text) in &masked.comments {
        let Some(at) = text.find(DIRECTIVE) else {
            continue;
        };
        let rest = text[at + DIRECTIVE.len()..].trim();
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(inner, _)| inner)
        else {
            diags.push(Diagnostic {
                path: rel.to_string(),
                line: *line,
                rule: RuleId::L100,
                message: format!(
                    "malformed directive; expected `{DIRECTIVE} allow(<rule>) -- <reason>`"
                ),
            });
            continue;
        };
        let reason = rest
            .split_once("--")
            .map(|(_, r)| r.trim())
            .unwrap_or_default();
        if reason.is_empty() {
            diags.push(Diagnostic {
                path: rel.to_string(),
                line: *line,
                rule: RuleId::L100,
                message: "suppression without a reason; write `-- <why this is sound>`".to_string(),
            });
            continue;
        }
        let mut rules = Vec::new();
        let mut bad = false;
        for name in inner.split(',') {
            match RuleId::parse(name) {
                Some(r) => rules.push(r),
                None => {
                    diags.push(Diagnostic {
                        path: rel.to_string(),
                        line: *line,
                        rule: RuleId::L101,
                        message: format!("unknown rule `{}` in allow(…)", name.trim()),
                    });
                    bad = true;
                }
            }
        }
        if !bad && !rules.is_empty() {
            out.push(Suppression {
                line: *line,
                rules,
                used: false,
            });
        }
    }
    out
}

/// True when the suppression on `sup_line` covers a diagnostic on
/// `diag_line`: same line (trailing comment) or the line directly
/// below (standalone comment line).
fn covers(sup_line: usize, diag_line: usize) -> bool {
    diag_line == sup_line || diag_line == sup_line + 1
}

/// Find identifiers bound to `HashMap`/`HashSet` values in a file's
/// masked code: field/let type ascriptions (`name: HashMap<…>`) and
/// constructor bindings (`name = HashMap::new()` etc.).
fn hash_bound_idents(masked: &MaskedFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in &masked.code {
        for ty in ["HashMap", "HashSet"] {
            for pos in find_word(line, ty) {
                // Walk back over any path prefix (`std::collections::`).
                let before = line[..pos].trim_end();
                let before = before
                    .strip_suffix("std::collections::")
                    .or_else(|| before.strip_suffix("collections::"))
                    .unwrap_or(before)
                    .trim_end();
                let ident = if let Some(s) = before.strip_suffix(':') {
                    last_ident(s.trim_end())
                } else if let Some(s) = before.strip_suffix('=') {
                    last_ident(s.trim_end())
                } else {
                    None
                };
                if let Some(id) = ident {
                    if !names.contains(&id) {
                        names.push(id);
                    }
                }
            }
        }
    }
    names
}

/// The trailing identifier of `s`, if any (`self.foo.bar` → `bar`).
fn last_ident(s: &str) -> Option<String> {
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|&(_, c)| c.is_alphanumeric() || c == '_')
        .map(|(i, _)| i)
        .last()?;
    let id = &s[start..end];
    if id.is_empty() || id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(id.to_string())
    }
}

/// Byte offsets of whole-word occurrences of `word` in `line`.
fn find_word(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let pos = from + rel;
        let before_ok = pos == 0
            || !line[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = line[pos + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

/// Iteration adaptors whose visit order follows the hasher.
const HASH_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Ambient entropy sources: all randomness must flow through the
/// seeded `outran_simcore::Rng` streams.
const AMBIENT_RNG: [&str; 5] = [
    "thread_rng",
    "rand::random",
    "from_entropy",
    "OsRng",
    "getrandom",
];

/// Analyze one already-masked file. `rel` must be workspace-relative
/// with `/` separators. Rules not in `enabled` are skipped; the
/// suppression-hygiene meta-rules always run. `check_stale` controls
/// L102 (disabled when the caller filtered rules, since a suppression
/// for a disabled rule is trivially "unused").
pub fn analyze_masked(
    rel: &str,
    masked: &MaskedFile,
    enabled: &[RuleId],
    check_stale: bool,
) -> Vec<Diagnostic> {
    let class = classify(rel);
    let mut diags = Vec::new();
    let mut suppressions = parse_suppressions(rel, masked, &mut diags);
    let mut raw: Vec<Diagnostic> = Vec::new();
    let on = |r: RuleId| enabled.contains(&r);

    let hash_idents = if on(RuleId::D2) && class.is_sim_lib {
        hash_bound_idents(masked)
    } else {
        Vec::new()
    };

    for (idx, line) in masked.code.iter().enumerate() {
        let line_no = idx + 1;
        let in_test = masked.in_test.get(idx).copied().unwrap_or(false);

        // D1 — wall clock.
        if on(RuleId::D1) && !class.wall_clock_ok && !in_test {
            for pat in ["Instant::now", "SystemTime"] {
                if line.contains(pat) {
                    raw.push(Diagnostic {
                        path: rel.to_string(),
                        line: line_no,
                        rule: RuleId::D1,
                        message: format!(
                            "wall-clock read `{pat}` outside the measurement allowlist; \
                             simulation state must advance on virtual time only"
                        ),
                    });
                }
            }
        }

        // D2 — hash iteration in sim library code.
        if on(RuleId::D2) && class.is_sim_lib && !in_test {
            for m in HASH_ITER_METHODS {
                let needle = format!(".{m}(");
                let mut from = 0;
                while let Some(rel_pos) = line[from..].find(&needle) {
                    let pos = from + rel_pos;
                    from = pos + needle.len();
                    // Receiver of the call: trailing identifier before
                    // the dot, looking back across a split method chain
                    // (`self.flows\n    .retain(…)`).
                    let recv = last_ident(&line[..pos]).or_else(|| {
                        let mut back = String::new();
                        for prev in masked.code[idx.saturating_sub(2)..idx].iter() {
                            back.push_str(prev);
                        }
                        back.push_str(&line[..pos]);
                        last_ident(back.trim_end().trim_end_matches('.').trim_end())
                    });
                    if let Some(recv) = recv {
                        if hash_idents.contains(&recv) {
                            raw.push(Diagnostic {
                                path: rel.to_string(),
                                line: line_no,
                                rule: RuleId::D2,
                                message: format!(
                                    "`{recv}.{m}()` iterates a HashMap/HashSet in hasher \
                                     order; use BTreeMap/BTreeSet or sort the keys"
                                ),
                            });
                        }
                    }
                }
            }
            // `for x in &map` / `for x in map` over a hash-bound name.
            if let Some(pos) = find_word(line, "in").into_iter().next() {
                if find_word(line, "for").first().is_some_and(|&f| f < pos) {
                    let tail = line[pos + 2..].trim_start().trim_start_matches('&');
                    let tail = tail.trim_start_matches("mut ").trim_start();
                    let tail = tail.strip_prefix("self.").unwrap_or(tail);
                    let ident: String = tail
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !ident.is_empty() && hash_idents.contains(&ident) {
                        raw.push(Diagnostic {
                            path: rel.to_string(),
                            line: line_no,
                            rule: RuleId::D2,
                            message: format!(
                                "`for … in {ident}` iterates a HashMap/HashSet in hasher \
                                 order; use BTreeMap/BTreeSet or sort the keys"
                            ),
                        });
                    }
                }
            }
        }

        // D3 — ambient randomness (applies everywhere, tests included:
        // unseeded tests cannot be replayed).
        if on(RuleId::D3) {
            for pat in AMBIENT_RNG {
                if (pat.contains(':') && line.contains(pat)) || !find_word(line, pat).is_empty() {
                    raw.push(Diagnostic {
                        path: rel.to_string(),
                        line: line_no,
                        rule: RuleId::D3,
                        message: format!(
                            "ambient randomness `{pat}`; draw from the seeded \
                             outran_simcore::Rng streams instead"
                        ),
                    });
                }
            }
        }

        // D4 — pop_due must drain via `while let`.
        if on(RuleId::D4) && !class.is_testish && !in_test && line.contains(".pop_due(") {
            let window_start = idx.saturating_sub(2);
            let window = masked.code[window_start..=idx].join("\n");
            if !window.contains("while let") {
                raw.push(Diagnostic {
                    path: rel.to_string(),
                    line: line_no,
                    rule: RuleId::D4,
                    message: "`pop_due` outside a `while let` drain: a single pop leaves \
                              due events queued past their deadline"
                        .to_string(),
                });
            }
        }

        // D5 — no panics in sim library code.
        if on(RuleId::D5) && class.is_sim_lib && !in_test {
            for (pat, what) in [
                (".unwrap()", "unwrap()"),
                (".expect(", "expect()"),
                ("panic!", "panic!"),
            ] {
                if line.contains(pat) {
                    raw.push(Diagnostic {
                        path: rel.to_string(),
                        line: line_no,
                        rule: RuleId::D5,
                        message: format!(
                            "`{what}` in sim library code violates the never-panic \
                             contract; restructure to total code or suppress with a reason"
                        ),
                    });
                }
            }
        }

        // D6 — stub markers in library code.
        if on(RuleId::D6) && !class.is_testish && !in_test {
            for pat in ["#[allow(dead_code)]", "todo!(", "unimplemented!("] {
                if line.contains(pat) {
                    raw.push(Diagnostic {
                        path: rel.to_string(),
                        line: line_no,
                        rule: RuleId::D6,
                        message: format!("stub marker `{pat}` left in library code"),
                    });
                }
            }
        }
    }

    // D6 — stale to-do/fix-me marker comments in library code.
    if on(RuleId::D6) && !class.is_testish {
        for (line, text) in &masked.comments {
            if text.contains(DIRECTIVE) {
                continue;
            }
            let idx = line.saturating_sub(1);
            if masked.in_test.get(idx).copied().unwrap_or(false) {
                continue;
            }
            for word in ["TODO", "FIXME"] {
                if !find_word(text, word).is_empty() {
                    raw.push(Diagnostic {
                        path: rel.to_string(),
                        line: *line,
                        rule: RuleId::D6,
                        message: format!(
                            "`{word}` comment in library code; fix it or convert to a \
                             reason-suppressed tracked item"
                        ),
                    });
                }
            }
        }
    }

    // D7 — crate roots must forbid unsafe code.
    if on(RuleId::D7) && class.is_crate_root {
        let has = masked
            .code
            .iter()
            .any(|l| l.contains("#![forbid(unsafe_code)]"));
        if !has {
            raw.push(Diagnostic {
                path: rel.to_string(),
                line: 1,
                rule: RuleId::D7,
                message: "crate root missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }

    // D8 — stage structs must keep their fields private.
    if on(RuleId::D8) && rel.starts_with("crates/ran/src/stages/") {
        d8_stage_fields(rel, masked, &mut raw);
    }

    // D9 — every stage-struct field must be covered by the file's
    // snapshot impls.
    if on(RuleId::D9) && rel.starts_with("crates/ran/src/stages/") {
        d9_snapshot_coverage(rel, masked, &mut raw);
    }

    // Apply suppressions.
    for d in raw {
        let mut suppressed = false;
        for s in suppressions.iter_mut() {
            if s.rules.contains(&d.rule) && covers(s.line, d.line) {
                s.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            diags.push(d);
        }
    }

    // L102 — stale suppressions (only meaningful under the full rule set).
    if check_stale {
        for s in &suppressions {
            if !s.used {
                diags.push(Diagnostic {
                    path: rel.to_string(),
                    line: s.line,
                    rule: RuleId::L102,
                    message: format!(
                        "stale suppression: allow({}) matched no diagnostic",
                        s.rules
                            .iter()
                            .map(|r| r.name())
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                });
            }
        }
    }

    diags.sort_by_key(|d| (d.line, d.rule));
    diags
}

/// D8: every struct named `*Stage` in a pipeline-stage file must
/// declare only private fields. The stage contract routes all
/// cross-stage state through typed messages and accessor methods; a
/// `pub` (or `pub(…)`) field would let other code reach into a stage's
/// slice of the former god-object again. Line-based like the other
/// rules: rustfmt keeps one field per line in this workspace.
fn d8_stage_fields(rel: &str, masked: &MaskedFile, raw: &mut Vec<Diagnostic>) {
    let n = masked.code.len();
    let mut i = 0;
    while i < n {
        let line = &masked.code[i];
        let decl = find_word(line, "struct")
            .into_iter()
            .next()
            .filter(|_| !masked.in_test.get(i).copied().unwrap_or(false));
        let Some(kw) = decl else {
            i += 1;
            continue;
        };
        let rest = line[kw + "struct".len()..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() || !name.ends_with("Stage") {
            i += 1;
            continue;
        }
        // Find the body opener — `{` (named fields), `(` (tuple
        // struct) or `;` (unit struct), whichever comes first.
        let mut opener: Option<(usize, usize, char)> = None; // (line idx, byte off, kind)
        'scan: for j in i..n {
            let start = if j == i { kw } else { 0 };
            let text = &masked.code[j][start..];
            for (off, c) in text.char_indices() {
                if matches!(c, '{' | '(' | ';') {
                    opener = Some((j, start + off, c));
                    break 'scan;
                }
            }
        }
        let Some((open_idx, open_off, kind)) = opener else {
            break;
        };
        if kind == ';' {
            i = open_idx + 1;
            continue;
        }
        let (open_ch, close_ch) = if kind == '{' { ('{', '}') } else { ('(', ')') };
        let mut depth = 0i32;
        let mut j = open_idx;
        'body: while j < n {
            let start = if j == open_idx { open_off } else { 0 };
            let text = &masked.code[j][start..];
            let fires = depth == 1
                && text
                    .trim_start()
                    .strip_prefix("pub")
                    .is_some_and(|r| r.starts_with(' ') || r.starts_with('('));
            if fires {
                let field = text
                    .trim_start()
                    .split_once(':')
                    .and_then(|(head, _)| last_ident(head.trim_end()))
                    .unwrap_or_else(|| "field".to_string());
                raw.push(Diagnostic {
                    path: rel.to_string(),
                    line: j + 1,
                    rule: RuleId::D8,
                    message: format!(
                        "non-private field `{field}` on stage struct `{name}`; stage state \
                         crosses stages only through typed messages — keep fields private \
                         and expose accessors"
                    ),
                });
            }
            for (off, c) in text.char_indices() {
                if c == open_ch {
                    depth += 1;
                } else if c == close_ch {
                    depth -= 1;
                    if depth == 0 {
                        // Tuple-struct bodies get a whole-body check:
                        // their fields share the declaration line.
                        if kind == '(' && j == open_idx {
                            let body = &masked.code[j][open_off..start + off];
                            if !find_word(body, "pub").is_empty() {
                                raw.push(Diagnostic {
                                    path: rel.to_string(),
                                    line: j + 1,
                                    rule: RuleId::D8,
                                    message: format!(
                                        "non-private field on stage struct `{name}`; stage \
                                         state crosses stages only through typed messages — \
                                         keep fields private and expose accessors"
                                    ),
                                });
                            }
                        }
                        i = j + 1;
                        break 'body;
                    }
                }
            }
            j += 1;
            if j >= n {
                i = n;
            }
        }
    }
}

/// D9: every named field of a `*Stage` struct must be mentioned inside
/// the file's `fn snap` / `fn load_snap` bodies. Checkpoint/resume is
/// bit-exact only while the snapshot layer covers the complete dynamic
/// state; a field added to a stage but forgotten in its snapshot
/// restores stale and silently diverges resumed runs. Fields that are
/// deliberately re-derived (config echoes, per-TTI scratch) carry a D9
/// suppression directive with a reason on their declaration line. A
/// stage struct in a file with no snapshot impl at
/// all is reported once at its declaration.
fn d9_snapshot_coverage(rel: &str, masked: &MaskedFile, raw: &mut Vec<Diagnostic>) {
    let n = masked.code.len();

    // Collect the bodies of every `fn snap` / `fn load_snap` (brace
    // walk from the declaration's opening `{`).
    let mut snap_body: Vec<String> = Vec::new();
    let mut has_snap_fn = false;
    let mut i = 0;
    while i < n {
        let line = &masked.code[i];
        let is_snap_decl = find_word(line, "fn").iter().any(|&at| {
            let rest = line[at + 2..].trim_start();
            rest.starts_with("snap(") || rest.starts_with("load_snap(")
        });
        if !is_snap_decl {
            i += 1;
            continue;
        }
        has_snap_fn = true;
        // Find the opening brace (may sit on a later line after a
        // multi-line signature), then walk to its match.
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i;
        while j < n {
            for c in masked.code[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened {
                snap_body.push(masked.code[j].clone());
            }
            if opened && depth == 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }

    // Walk `*Stage` struct declarations and their named fields.
    let mut i = 0;
    while i < n {
        let line = &masked.code[i];
        let Some(kw) = find_word(line, "struct").into_iter().next() else {
            i += 1;
            continue;
        };
        let rest = line[kw + "struct".len()..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() || !name.ends_with("Stage") {
            i += 1;
            continue;
        }
        // Locate the `{` opening the field block (`;`/`(` structs have
        // no named fields to cover).
        let mut opener: Option<(usize, usize)> = None;
        'scan: for j in i..n {
            let start = if j == i { kw } else { 0 };
            for (off, c) in masked.code[j][start..].char_indices() {
                match c {
                    '{' => {
                        opener = Some((j, start + off));
                        break 'scan;
                    }
                    '(' | ';' => break 'scan,
                    _ => {}
                }
            }
        }
        let Some((open_idx, open_off)) = opener else {
            i += 1;
            continue;
        };
        let mut fields: Vec<(String, usize)> = Vec::new();
        let mut depth = 0i32;
        let mut j = open_idx;
        'body: while j < n {
            let start = if j == open_idx { open_off } else { 0 };
            let text = &masked.code[j][start..];
            if depth == 1 {
                if let Some((head, _)) = text.trim_start().split_once(':') {
                    // Guard against `::` paths and expression lines:
                    // a field head is identifiers/visibility only.
                    if !head.contains('(') || head.trim_start().starts_with("pub(") {
                        if let Some(id) = last_ident(head.trim_end()) {
                            fields.push((id, j + 1));
                        }
                    }
                }
            }
            for (off, c) in text.char_indices() {
                if c == '{' {
                    depth += 1;
                } else if c == '}' {
                    depth -= 1;
                    if depth == 0 {
                        i = j + 1;
                        break 'body;
                    }
                }
                let _ = off;
            }
            j += 1;
            if j >= n {
                i = n;
                break;
            }
        }
        if fields.is_empty() {
            continue;
        }
        if !has_snap_fn {
            raw.push(Diagnostic {
                path: rel.to_string(),
                line: open_idx + 1,
                rule: RuleId::D9,
                message: format!(
                    "stage struct `{name}` has no `fn snap`/`fn load_snap` in this file; \
                     stages must be checkpointable (see checkpoint.rs)"
                ),
            });
            continue;
        }
        for (field, line_no) in fields {
            let covered = snap_body.iter().any(|l| !find_word(l, &field).is_empty());
            if !covered {
                raw.push(Diagnostic {
                    path: rel.to_string(),
                    line: line_no,
                    rule: RuleId::D9,
                    message: format!(
                        "field `{field}` of stage struct `{name}` is not covered by the \
                         snapshot impls; serialize it in snap/load_snap, or suppress with \
                         a reason why restore re-derives it"
                    ),
                });
            }
        }
    }
}

/// Analyze raw source text (convenience wrapper over [`mask`] +
/// [`analyze_masked`]).
pub fn analyze_source(
    rel: &str,
    src: &str,
    enabled: &[RuleId],
    check_stale: bool,
) -> Vec<Diagnostic> {
    analyze_masked(rel, &mask(src), enabled, check_stale)
}
