//! A small hand-rolled Rust surface scanner.
//!
//! The workspace forbids crates.io access, so instead of `syn` the
//! linter works on a *masked* view of each source file: the scanner
//! walks the raw text once and blanks out everything that is not code
//! (comment bodies, string/char-literal contents), preserving line and
//! column structure so rule matches report real `file:line` positions.
//! Comment text is captured separately — suppression directives and the
//! D6 stale-marker check read comments, every other rule reads only
//! the masked code.
//!
//! The scanner understands the token shapes that defeat naive grep:
//! line comments (`//`, `///`, `//!`), nested block comments
//! (`/* /* */ */`), string literals with escapes, raw strings
//! (`r"…"`, `r#"…"#`, any hash depth, plus `br…` byte forms), byte
//! strings, char literals (`'x'`, `'\n'`, `'\u{1F600}'`), and the
//! char-vs-lifetime ambiguity (`'a'` is a literal, `'a` in `Vec<'a, T>`
//! is not).
//!
//! It additionally tracks `#[cfg(test)]`-gated item spans by brace
//! depth, so rules that exempt test code (D1/D4/D5) can skip in-file
//! unit-test modules without path heuristics.

/// One scanned file: masked code plus extracted comments.
#[derive(Debug, Clone)]
pub struct MaskedFile {
    /// Per line (0-indexed): source with comment bodies and literal
    /// contents replaced by spaces. Delimiters (`"`, `'`) survive so
    /// patterns like `.expect(` keep their shape.
    pub code: Vec<String>,
    /// `(line_1based, text)` for every comment, one entry per comment
    /// per line (a block comment spanning lines yields one entry per
    /// line it touches).
    pub comments: Vec<(usize, String)>,
    /// Per line (0-indexed): true when the line sits inside a
    /// `#[cfg(test)]`-gated braced item (typically `mod tests { … }`).
    pub in_test: Vec<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str,
    RawStr { hashes: u32 },
    CharLit,
}

/// Scan `src` into its masked representation.
pub fn mask(src: &str) -> MaskedFile {
    let bytes: Vec<char> = src.chars().collect();
    let mut state = State::Code;
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut code = Vec::new();
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line_no = 1usize;

    let mut i = 0usize;
    let n = bytes.len();
    let flush_line = |code_line: &mut String,
                      comment_line: &mut String,
                      code: &mut Vec<String>,
                      comments: &mut Vec<(usize, String)>,
                      line_no: &mut usize| {
        code.push(std::mem::take(code_line));
        let c = std::mem::take(comment_line);
        if !c.trim().is_empty() {
            comments.push((*line_no, c));
        }
        *line_no += 1;
    };

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line(
                &mut code_line,
                &mut comment_line,
                &mut code,
                &mut comments,
                &mut line_no,
            );
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: 1 };
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code_line.push('"');
                    i += 1;
                } else if is_raw_str_start(&bytes, i) {
                    // r"…" / r#"…"# / br#"…"# — count hashes.
                    let mut j = i;
                    while bytes[j] != '"' {
                        code_line.push(bytes[j]);
                        j += 1;
                    }
                    let hashes = bytes[i..j].iter().filter(|&&h| h == '#').count() as u32;
                    code_line.push('"');
                    state = State::RawStr { hashes };
                    i = j + 1;
                } else if c == '\'' && is_char_literal(&bytes, i) {
                    state = State::CharLit;
                    code_line.push('\'');
                    i += 1;
                } else {
                    code_line.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_line.push(c);
                code_line.push(' ');
                i += 1;
            }
            State::BlockComment { depth } => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: depth + 1 };
                    comment_line.push_str("  ");
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment { depth: depth - 1 };
                    }
                    comment_line.push_str("  ");
                    code_line.push_str("  ");
                    i += 2;
                } else {
                    comment_line.push(c);
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && i + 1 < n {
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    code_line.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' && raw_str_closes(&bytes, i, hashes) {
                    code_line.push('"');
                    for _ in 0..hashes {
                        code_line.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' && i + 1 < n {
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    code_line.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
        }
    }
    flush_line(
        &mut code_line,
        &mut comment_line,
        &mut code,
        &mut comments,
        &mut line_no,
    );

    let in_test = mark_test_spans(&code);
    MaskedFile {
        code,
        comments,
        in_test,
    }
}

/// Does a raw-string literal start at `i`? (`r"`, `r#"`, `br"`, `br#"` …)
/// Guards against identifiers ending in `r` (`var"` is not valid Rust,
/// but `number_of_r` followed by `#` in macro-ish code could confuse a
/// naive check): the char before must not be part of an identifier.
fn is_raw_str_start(bytes: &[char], i: usize) -> bool {
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Does the `"` at `i` close a raw string opened with `hashes` hashes?
fn raw_str_closes(bytes: &[char], i: usize, hashes: u32) -> bool {
    for k in 0..hashes as usize {
        if bytes.get(i + 1 + k) != Some(&'#') {
            return false;
        }
    }
    true
}

/// Distinguish a char literal from a lifetime at a `'` in code position.
/// `'x'`, `'\n'`, `'\u{…}'` are literals; `'a` followed by anything but a
/// closing quote is a lifetime (or loop label).
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(&c) if c.is_alphanumeric() || c == '_' => bytes.get(i + 2) == Some(&'\''),
        Some(&c) if c != '\'' => true, // e.g. '+' ' ' — punctuation chars
        _ => false,
    }
}

/// Mark lines covered by `#[cfg(test)]`-gated braced items.
///
/// A `cfg(test)` attribute arms the tracker; the next `{` at statement
/// level opens a test span that closes when brace depth returns to its
/// pre-entry value. A `;` before any `{` disarms (attribute on a
/// braceless item such as `#[cfg(test)] use …;`).
fn mark_test_spans(code: &[String]) -> Vec<bool> {
    let mut out = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut test_entry_depth: Option<i64> = None;

    for (ln, line) in code.iter().enumerate() {
        if line.contains("cfg(test") {
            armed = true;
        }
        if test_entry_depth.is_some() {
            out[ln] = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    if armed && test_entry_depth.is_none() {
                        test_entry_depth = Some(depth);
                        armed = false;
                        out[ln] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_entry_depth == Some(depth) {
                        test_entry_depth = None;
                    }
                }
                ';' if armed && test_entry_depth.is_none() => {
                    armed = false;
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_doc_comments() {
        let m = mask("let x = 1; // Instant::now() here\n/// docs .unwrap()\nfn f() {}\n");
        assert!(!m.code[0].contains("Instant"));
        assert!(!m.code[1].contains("unwrap"));
        assert!(m.code[2].contains("fn f"));
        assert_eq!(m.comments.len(), 2);
        assert!(m.comments[0].1.contains("Instant::now"));
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = mask("a /* outer /* inner */ still comment */ b\n");
        let line = &m.code[0];
        assert!(line.contains('a') && line.contains('b'));
        assert!(!line.contains("inner"));
        assert!(!line.contains("still"));
    }

    #[test]
    fn masks_string_contents_but_keeps_quotes() {
        let m = mask("let s = \"Instant::now() \\\" quoted\";\n");
        assert!(!m.code[0].contains("Instant"));
        assert_eq!(m.code[0].matches('"').count(), 2);
    }

    #[test]
    fn masks_raw_strings() {
        let m = mask("let s = r#\"thread_rng \" inner\"#; let t = 1;\n");
        assert!(!m.code[0].contains("thread_rng"));
        assert!(m.code[0].contains("let t = 1;"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let m = mask("fn f<'a>(x: &'a str) { let c = '\\''; let d = 'y'; }\n");
        assert!(m.code[0].contains("fn f<'a>"));
        assert!(!m.code[0].contains('y'));
    }

    #[test]
    fn cfg_test_spans_cover_mod_body() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let m = mask(src);
        assert!(!m.in_test[0]);
        assert!(m.in_test[3]);
        assert!(!m.in_test[5]);
    }

    #[test]
    fn cfg_test_on_braceless_item_disarms() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() { body(); }\n";
        let m = mask(src);
        assert!(!m.in_test[2]);
    }
}
