//! CLI for `outran-lint`.
//!
//! ```text
//! cargo run -p outran-lint --release -- [--json] [--rule <id>]... [paths…]
//! ```
//!
//! With no paths, lints the whole workspace. Paths (files or
//! directories, relative to the workspace root or absolute) restrict
//! the scan. `--rule` restricts the catalog to the named rules (the
//! suppression-hygiene meta-rules still run; the stale-suppression
//! check L102 is disabled under a filter). Exits non-zero on any
//! diagnostic.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use outran_lint::{find_workspace_root, lint_files, workspace_files, RuleId};

fn main() -> ExitCode {
    let mut json = false;
    let mut rules: Vec<RuleId> = Vec::new();
    let mut paths: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--rule" => {
                let Some(name) = args.next() else {
                    eprintln!("error: --rule needs an argument (one of D1..D8, L100..L102)");
                    return ExitCode::from(2);
                };
                let Some(rule) = RuleId::parse(&name) else {
                    eprintln!("error: unknown rule `{name}` (expected D1..D8 or L100..L102)");
                    return ExitCode::from(2);
                };
                rules.push(rule);
            }
            "--help" | "-h" => {
                println!(
                    "outran-lint: determinism & simulation-soundness checks\n\
                     usage: outran-lint [--json] [--rule <id>]... [paths...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => paths.push(other.to_string()),
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(&cwd)
        .or_else(|| find_workspace_root(&manifest_dir))
        .unwrap_or(cwd);

    let all = match workspace_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let files: Vec<PathBuf> = if paths.is_empty() {
        all
    } else {
        let wanted: Vec<PathBuf> = paths
            .iter()
            .map(|p| {
                let pb = Path::new(p);
                if pb.is_absolute() {
                    pb.to_path_buf()
                } else {
                    root.join(pb)
                }
            })
            .collect();
        all.into_iter()
            .filter(|f| wanted.iter().any(|w| f == w || f.starts_with(w)))
            .collect()
    };

    let check_stale = rules.is_empty();
    let enabled: Vec<RuleId> = if rules.is_empty() {
        RuleId::CATALOG.to_vec()
    } else {
        rules
    };

    let report = match lint_files(&root, &files, &enabled, check_stale) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        eprintln!(
            "outran-lint: {} file(s) checked, {} diagnostic(s)",
            report.checked_files,
            report.diagnostics.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
