//! TCP receiver: out-of-order range tracking and cumulative ACKs.

use std::collections::BTreeMap;

/// The receiving endpoint of one flow (lives at the UE).
///
/// Tracks which byte ranges have arrived, merges them, and exposes the
/// cumulative ACK (the first missing byte). The flow is *complete* when
/// the cumulative ACK reaches the flow size — that instant is the flow's
/// completion time (FCT), the paper's primary metric.
#[derive(Debug, Clone)]
pub struct TcpReceiver {
    flow_size: u64,
    /// Contiguously received prefix.
    cum: u64,
    /// Out-of-order ranges: start → end (exclusive), non-overlapping.
    ooo: BTreeMap<u64, u64>,
    /// Total payload bytes accepted (including duplicates) — diagnostics.
    pub bytes_seen: u64,
}

impl TcpReceiver {
    /// Create a receiver expecting `flow_size` bytes.
    pub fn new(flow_size: u64) -> TcpReceiver {
        TcpReceiver {
            flow_size,
            cum: 0,
            ooo: BTreeMap::new(),
            bytes_seen: 0,
        }
    }

    /// Process an arriving segment; returns the cumulative ACK to send.
    pub fn on_segment(&mut self, seq: u64, len: u32) -> u64 {
        self.bytes_seen += len as u64;
        let end = seq + len as u64;
        if end <= self.cum {
            return self.cum; // pure duplicate
        }
        let start = seq.max(self.cum);
        self.insert_range(start, end);
        // Advance the cumulative prefix over any now-contiguous ranges.
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.cum {
                self.cum = self.cum.max(e);
                self.ooo.remove(&s);
            } else {
                break;
            }
        }
        self.cum
    }

    fn insert_range(&mut self, mut start: u64, mut end: u64) {
        // Merge with overlapping/adjacent existing ranges.
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=end)
            .filter(|(&s, &e)| e >= start || s <= end)
            .filter(|(&s, _)| {
                let e = self.ooo[&s];
                s <= end && e >= start
            })
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            if let Some(e) = self.ooo.remove(&s) {
                start = start.min(s);
                end = end.max(e);
            }
        }
        self.ooo.insert(start, end);
    }

    /// Cumulative contiguous bytes received.
    pub fn cum(&self) -> u64 {
        self.cum
    }

    /// Whether the whole flow has arrived.
    pub fn complete(&self) -> bool {
        self.cum >= self.flow_size
    }

    /// Number of buffered out-of-order ranges (diagnostics).
    pub fn ooo_ranges(&self) -> usize {
        self.ooo.len()
    }

    /// Expected flow size.
    pub fn flow_size(&self) -> u64 {
        self.flow_size
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl TcpReceiver {
    /// Serialize the receiver (checkpointing). BTreeMap iteration is
    /// key-ordered, so the byte stream is deterministic.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.flow_size);
        w.u64(self.cum);
        w.u64(self.bytes_seen);
        w.seq(self.ooo.iter(), |w, (&s, &e)| {
            w.u64(s);
            w.u64(e);
        });
    }

    /// Restore a receiver from [`TcpReceiver::snap`] output.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<TcpReceiver, SnapError> {
        let flow_size = r.u64()?;
        let mut rx = TcpReceiver::new(flow_size);
        rx.cum = r.u64()?;
        rx.bytes_seen = r.u64()?;
        for (s, e) in r.seq(|r| Ok((r.u64()?, r.u64()?)))? {
            rx.ooo.insert(s, e);
        }
        Ok(rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery() {
        let mut r = TcpReceiver::new(3000);
        assert_eq!(r.on_segment(0, 1400), 1400);
        assert_eq!(r.on_segment(1400, 1400), 2800);
        assert_eq!(r.on_segment(2800, 200), 3000);
        assert!(r.complete());
    }

    #[test]
    fn out_of_order_held_then_merged() {
        let mut r = TcpReceiver::new(4200);
        assert_eq!(r.on_segment(1400, 1400), 0);
        assert_eq!(r.on_segment(2800, 1400), 0);
        assert_eq!(r.ooo_ranges(), 1, "adjacent ranges merge");
        assert_eq!(r.on_segment(0, 1400), 4200);
        assert!(r.complete());
    }

    #[test]
    fn duplicates_ignored() {
        let mut r = TcpReceiver::new(2800);
        r.on_segment(0, 1400);
        assert_eq!(r.on_segment(0, 1400), 1400);
        assert_eq!(r.on_segment(500, 100), 1400);
        assert!(!r.complete());
    }

    #[test]
    fn partial_overlap_handled() {
        let mut r = TcpReceiver::new(3000);
        r.on_segment(1000, 500); // [1000,1500)
        r.on_segment(1200, 800); // extends to [1000,2000)
        assert_eq!(r.ooo_ranges(), 1);
        assert_eq!(r.on_segment(0, 1000), 2000);
    }

    #[test]
    fn gap_keeps_cum_stalled() {
        let mut r = TcpReceiver::new(10_000);
        r.on_segment(0, 1400);
        r.on_segment(4200, 1400); // hole at [1400,4200)
        assert_eq!(r.cum(), 1400);
        r.on_segment(1400, 1400);
        assert_eq!(r.cum(), 2800);
        r.on_segment(2800, 1400);
        assert_eq!(r.cum(), 5600, "hole fill releases buffered range");
    }

    #[test]
    fn many_random_arrivals_complete() {
        // Deliver 100 segments in a scrambled but fixed order.
        let n = 100u64;
        let mut order: Vec<u64> = (0..n).collect();
        // Deterministic scramble.
        for i in 0..order.len() {
            let j = (i * 37 + 11) % order.len();
            order.swap(i, j);
        }
        let mut r = TcpReceiver::new(n * 1000);
        for &i in &order {
            r.on_segment(i * 1000, 1000);
        }
        assert!(r.complete());
        assert_eq!(r.cum(), n * 1000);
        assert_eq!(r.ooo_ranges(), 0);
    }
}
