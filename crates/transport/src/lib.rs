//! # outran-transport
//!
//! A windowed TCP endpoint model (TCP-Cubic by default, Reno available),
//! the transport substrate under every evaluation scenario: "The
//! transport protocol is TCP-Cubic \[39\] and the buffer size per-user at
//! xNodeB is set to the default value of srsRAN" (§3, §6.2).
//!
//! Why a real window dynamic matters here: the whole motivation of the
//! paper — queue build-up behind long flows, bufferbloat in the per-UE
//! RLC buffer, short flows stuck behind bursts (§3) — is produced by the
//! *feedback loop* between TCP's congestion window and the base station
//! buffer. A fluid or fixed-rate model would not reproduce Figure 3(b)'s
//! buffer-size sensitivity or the 5G queue-delay inflation of Figure 17.
//!
//! The model implements: slow start, congestion avoidance (Cubic window
//! growth or Reno AIMD), duplicate-ACK fast retransmit with fast
//! recovery, RTO with exponential backoff and go-back-N resume, and an
//! RFC 6298 RTT estimator. The receiver tracks out-of-order ranges and
//! produces cumulative ACKs.
//!
//! What is deliberately left out (and why it does not change the paper's
//! phenomena): SACK (recovery is slightly slower without it — the same
//! for every scheduler under comparison), delayed ACKs, ECN, window
//! scaling limits, and the three-way handshake (flows are server-push;
//! the request RTT is accounted by the workload layer).

//!
//! # Example
//!
//! ```
//! use outran_transport::{TcpConfig, TcpSender, TcpReceiver};
//! use outran_simcore::{Dur, Time};
//!
//! let mut tx = TcpSender::new(TcpConfig::default(), 30_000);
//! let mut rx = TcpReceiver::new(30_000);
//! let mut now = Time::ZERO;
//! while !rx.complete() {
//!     let mut cum = rx.cum();
//!     for seg in tx.emit(now) {
//!         cum = rx.on_segment(seg.seq, seg.len);
//!     }
//!     now = now + Dur::from_millis(20);
//!     tx.on_ack(now, cum);
//! }
//! assert!(tx.done());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod receiver;
pub mod sender;

pub use receiver::TcpReceiver;
pub use sender::{CcAlgo, Segment, TcpConfig, TcpSender};
