//! TCP sender: window management, loss recovery, RTT estimation.

use outran_simcore::{Dur, Time};

/// Congestion-control algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgo {
    /// CUBIC (RFC 8312-flavoured): the paper's transport (§3, §6.2).
    Cubic,
    /// Classic Reno AIMD (for comparisons/tests).
    Reno,
}

/// Sender configuration.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per packet).
    pub mss: u32,
    /// Initial congestion window in segments (RFC 6928: 10).
    pub init_cwnd_segs: u32,
    /// Congestion control algorithm.
    pub algo: CcAlgo,
    /// Minimum retransmission timeout.
    pub min_rto: Dur,
    /// Maximum retransmission timeout.
    pub max_rto: Dur,
    /// Cubic C constant (units: MSS/s³).
    pub cubic_c: f64,
    /// Cubic multiplicative decrease β.
    pub cubic_beta: f64,
    /// Upper bound on cwnd in segments (receive/system window).
    pub max_cwnd_segs: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1400,
            init_cwnd_segs: 10,
            algo: CcAlgo::Cubic,
            min_rto: Dur::from_millis(200),
            max_rto: Dur::from_secs(60),
            cubic_c: 0.4,
            cubic_beta: 0.7,
            max_cwnd_segs: 1000,
        }
    }
}

/// A data segment the sender wants on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Sequence number of the first payload byte.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// Whether this is a retransmission.
    pub is_retx: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    SlowStart,
    CongestionAvoidance,
    FastRecovery,
}

/// RFC 6298 RTT estimator.
#[derive(Debug, Clone, Copy)]
struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    min_rto: f64,
    max_rto: f64,
}

impl RttEstimator {
    fn new(min_rto: Dur, max_rto: Dur) -> RttEstimator {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            rto: 1.0, // RFC 6298 initial RTO: 1 s
            min_rto: min_rto.as_secs_f64(),
            max_rto: max_rto.as_secs_f64(),
        }
    }

    fn sample(&mut self, rtt: f64) {
        let srtt = match self.srtt {
            None => {
                self.rttvar = rtt / 2.0;
                rtt
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - rtt).abs();
                0.875 * srtt + 0.125 * rtt
            }
        };
        self.srtt = Some(srtt);
        self.rto = (srtt + (4.0 * self.rttvar).max(0.001)).clamp(self.min_rto, self.max_rto);
    }

    fn backoff(&mut self) {
        self.rto = (self.rto * 2.0).min(self.max_rto);
    }
}

/// The TCP sender for one downlink flow.
#[derive(Debug, Clone)]
pub struct TcpSender {
    cfg: TcpConfig,
    /// Total bytes this flow will transfer.
    flow_size: u64,
    /// First unacknowledged byte.
    snd_una: u64,
    /// Next new byte to send.
    snd_nxt: u64,
    /// Congestion window in bytes.
    cwnd: f64,
    /// Slow-start threshold in bytes.
    ssthresh: f64,
    phase: Phase,
    dup_acks: u32,
    /// Recovery point for NewReno-style fast recovery.
    recover: u64,
    /// One pending fast-retransmit segment.
    retx_pending: Option<Segment>,
    rtt: RttEstimator,
    /// Send timestamp of the earliest in-flight segment (for RTT samples;
    /// Karn's rule: retransmitted ranges don't produce samples).
    sample_seq: Option<(u64, Time)>,
    /// Current RTO deadline (None when nothing is in flight).
    rto_deadline: Option<Time>,
    /// Statistics: retransmitted bytes, timeouts.
    pub retx_bytes: u64,
    /// Statistics: RTO events.
    pub timeouts: u64,
    /// Most recent RTT sample (diagnostics; Fig 17's RTT column).
    pub last_rtt: Option<Dur>,
    /// CUBIC window-curve state.
    cubic: CubicState,
}

#[derive(Debug, Clone, Copy, Default)]
struct CubicState {
    epoch_start: Option<Time>,
    /// Window (in segments) at the last loss event.
    w_max: f64,
    /// Time to return to w_max (seconds).
    k: f64,
}

impl TcpSender {
    /// Create a sender whose RTO estimator is seeded from a handshake
    /// RTT sample (real connections take one on SYN/SYN-ACK, so the
    /// first data RTO is a few RTTs — not the 1 s cold-start default).
    pub fn with_initial_rtt(cfg: TcpConfig, flow_size: u64, rtt: Dur) -> TcpSender {
        let mut s = TcpSender::new(cfg, flow_size);
        s.rtt.sample(rtt.as_secs_f64());
        s
    }

    /// Create a sender for a flow of `flow_size` bytes.
    pub fn new(cfg: TcpConfig, flow_size: u64) -> TcpSender {
        TcpSender {
            cfg,
            flow_size,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: (cfg.init_cwnd_segs * cfg.mss) as f64,
            ssthresh: f64::INFINITY,
            phase: Phase::SlowStart,
            dup_acks: 0,
            recover: 0,
            retx_pending: None,
            rtt: RttEstimator::new(cfg.min_rto, cfg.max_rto),
            sample_seq: None,
            rto_deadline: None,
            retx_bytes: 0,
            timeouts: 0,
            last_rtt: None,
            cubic: CubicState::default(),
        }
    }

    /// Whether every byte has been acknowledged.
    pub fn done(&self) -> bool {
        self.snd_una >= self.flow_size
    }

    /// Bytes in flight.
    pub fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current congestion window (bytes).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current RTO deadline if armed.
    pub fn rto_deadline(&self) -> Option<Time> {
        if self.done() {
            None
        } else {
            self.rto_deadline
        }
    }

    /// Total flow size.
    pub fn flow_size(&self) -> u64 {
        self.flow_size
    }

    /// Emit segments permitted by the window at `now`. Call after every
    /// state change (ack/timeout) and at flow start.
    pub fn emit(&mut self, now: Time) -> Vec<Segment> {
        let mut out = Vec::new();
        if let Some(seg) = self.retx_pending.take() {
            self.retx_bytes += seg.len as u64;
            out.push(seg);
        }
        let cwnd = self.cwnd.max(self.cfg.mss as f64) as u64;
        while self.in_flight() < cwnd && self.snd_nxt < self.flow_size {
            let len = (self.flow_size - self.snd_nxt).min(self.cfg.mss as u64) as u32;
            out.push(Segment {
                seq: self.snd_nxt,
                len,
                is_retx: false,
            });
            if self.sample_seq.is_none() {
                self.sample_seq = Some((self.snd_nxt, now));
            }
            self.snd_nxt += len as u64;
        }
        if !out.is_empty() && self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + Dur::from_secs_f64(self.rtt.rto));
        }
        out
    }

    /// Process a cumulative ACK.
    pub fn on_ack(&mut self, now: Time, cum_ack: u64) {
        if cum_ack > self.snd_una {
            // New data acknowledged.
            let newly = cum_ack - self.snd_una;
            self.snd_una = cum_ack;
            // A late ACK after a go-back-N reset can outrun snd_nxt
            // (the "lost" data actually arrived); resume from the ACK.
            self.snd_nxt = self.snd_nxt.max(cum_ack);
            self.dup_acks = 0;
            // RTT sample (Karn: only if the sampled seq was not retx'd and
            // is now covered).
            if let Some((seq, sent_at)) = self.sample_seq {
                if cum_ack > seq {
                    let rtt = now.saturating_since(sent_at).as_secs_f64();
                    self.rtt.sample(rtt);
                    self.last_rtt = Some(now.saturating_since(sent_at));
                    self.sample_seq = None;
                }
            }
            match self.phase {
                Phase::FastRecovery => {
                    if cum_ack >= self.recover {
                        // Full recovery.
                        self.phase = Phase::CongestionAvoidance;
                        self.cwnd = self.ssthresh;
                    } else {
                        // Partial ACK: retransmit the next hole.
                        self.queue_retx();
                    }
                }
                Phase::SlowStart => {
                    self.cwnd += newly as f64;
                    if self.cwnd >= self.ssthresh {
                        self.phase = Phase::CongestionAvoidance;
                        self.cubic_epoch_reset(now);
                    }
                }
                Phase::CongestionAvoidance => self.ca_growth(now, newly),
            }
            self.clamp_cwnd();
            // Re-arm RTO.
            self.rto_deadline = if self.done() && self.in_flight() == 0 {
                None
            } else {
                Some(now + Dur::from_secs_f64(self.rtt.rto))
            };
        } else if cum_ack == self.snd_una && self.in_flight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.phase != Phase::FastRecovery {
                self.enter_fast_recovery(now);
            } else if self.phase == Phase::FastRecovery {
                // NewReno window inflation: each further dupack signals a
                // segment has left the network; keep the pipe full so the
                // sender doesn't stall into an RTO during recovery.
                self.cwnd += self.cfg.mss as f64;
                self.clamp_cwnd();
            }
        }
    }

    /// Handle RTO expiry. Caller must check `rto_deadline()` first.
    pub fn on_rto(&mut self, now: Time) {
        if self.done() {
            self.rto_deadline = None;
            return;
        }
        self.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max((2 * self.cfg.mss) as f64);
        self.cwnd = self.cfg.mss as f64;
        self.phase = Phase::SlowStart;
        self.dup_acks = 0;
        // Go-back-N: everything unacked is presumed lost.
        self.snd_nxt = self.snd_una;
        self.retx_pending = None;
        self.sample_seq = None; // Karn's rule
        self.rtt.backoff();
        self.rto_deadline = Some(now + Dur::from_secs_f64(self.rtt.rto));
        self.cubic = CubicState::default();
    }

    fn enter_fast_recovery(&mut self, now: Time) {
        self.phase = Phase::FastRecovery;
        self.recover = self.snd_nxt;
        let beta = match self.cfg.algo {
            CcAlgo::Cubic => self.cfg.cubic_beta,
            CcAlgo::Reno => 0.5,
        };
        // Cubic remembers the pre-loss window as W_max.
        self.cubic.w_max = self.cwnd / self.cfg.mss as f64;
        self.ssthresh = (self.cwnd * beta).max((2 * self.cfg.mss) as f64);
        self.cwnd = self.ssthresh;
        self.cubic_epoch_reset(now);
        self.queue_retx();
    }

    fn queue_retx(&mut self) {
        let len = (self.flow_size - self.snd_una).min(self.cfg.mss as u64) as u32;
        if len > 0 {
            self.retx_pending = Some(Segment {
                seq: self.snd_una,
                len,
                is_retx: true,
            });
        }
    }

    fn ca_growth(&mut self, now: Time, newly_acked: u64) {
        match self.cfg.algo {
            CcAlgo::Reno => {
                // +1 MSS per RTT => per-byte share.
                self.cwnd += (self.cfg.mss as f64) * (newly_acked as f64) * self.cfg.mss as f64
                    / self.cwnd.max(1.0)
                    / self.cfg.mss as f64;
            }
            CcAlgo::Cubic => {
                let mss = self.cfg.mss as f64;
                if self.cubic.epoch_start.is_none() {
                    self.cubic_epoch_reset(now);
                }
                // Total: the reset above guarantees `Some`; fall back to
                // a zero-length epoch rather than panicking.
                let epoch = self.cubic.epoch_start.unwrap_or(now);
                let t = now.saturating_since(epoch).as_secs_f64();
                let target_segs = self.cfg.cubic_c * (t - self.cubic.k).powi(3) + self.cubic.w_max;
                let target = target_segs * mss;
                if target > self.cwnd {
                    // Approach the cubic target over one RTT.
                    let step = (target - self.cwnd) * (newly_acked as f64) / self.cwnd.max(mss);
                    self.cwnd += step.min(mss * (newly_acked as f64) / mss); // ≤ slow-start pace
                } else {
                    // TCP-friendly minimal growth.
                    self.cwnd += 0.01 * mss * (newly_acked as f64) / self.cwnd.max(mss);
                }
            }
        }
    }

    fn cubic_epoch_reset(&mut self, now: Time) {
        let mss = self.cfg.mss as f64;
        let w = self.cwnd / mss;
        if self.cubic.w_max < w {
            self.cubic.w_max = w;
        }
        self.cubic.k = ((self.cubic.w_max - w).max(0.0) / self.cfg.cubic_c).cbrt();
        self.cubic.epoch_start = Some(now);
    }

    fn clamp_cwnd(&mut self) {
        let max = (self.cfg.max_cwnd_segs * self.cfg.mss) as f64;
        self.cwnd = self.cwnd.clamp(self.cfg.mss as f64, max);
    }
}

impl TcpSender {
    /// Current slow-start threshold (bytes) — diagnostics.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl TcpSender {
    /// Serialize the full sender state (checkpointing). The config is
    /// not serialized: the restoring side rebuilds it from the
    /// experiment configuration and passes it to [`TcpSender::unsnap`].
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.flow_size);
        w.u64(self.snd_una);
        w.u64(self.snd_nxt);
        w.f64(self.cwnd);
        w.f64(self.ssthresh);
        w.u8(match self.phase {
            Phase::SlowStart => 0,
            Phase::CongestionAvoidance => 1,
            Phase::FastRecovery => 2,
        });
        w.u32(self.dup_acks);
        w.u64(self.recover);
        w.opt(&self.retx_pending, |w, seg| {
            w.u64(seg.seq);
            w.u32(seg.len);
            w.bool(seg.is_retx);
        });
        w.opt(&self.rtt.srtt, |w, &v| w.f64(v));
        w.f64(self.rtt.rttvar);
        w.f64(self.rtt.rto);
        w.opt(&self.sample_seq, |w, &(seq, at)| {
            w.u64(seq);
            w.time(at);
        });
        w.opt(&self.rto_deadline, |w, &t| w.time(t));
        w.u64(self.retx_bytes);
        w.u64(self.timeouts);
        w.opt(&self.last_rtt, |w, &d| w.dur(d));
        w.opt(&self.cubic.epoch_start, |w, &t| w.time(t));
        w.f64(self.cubic.w_max);
        w.f64(self.cubic.k);
    }

    /// Restore a sender from [`TcpSender::snap`] output under `cfg`.
    pub fn unsnap(cfg: TcpConfig, r: &mut SnapReader<'_>) -> Result<TcpSender, SnapError> {
        let flow_size = r.u64()?;
        let mut s = TcpSender::new(cfg, flow_size);
        s.snd_una = r.u64()?;
        s.snd_nxt = r.u64()?;
        s.cwnd = r.f64()?;
        s.ssthresh = r.f64()?;
        s.phase = match r.u8()? {
            0 => Phase::SlowStart,
            1 => Phase::CongestionAvoidance,
            2 => Phase::FastRecovery,
            _ => return Err(SnapError::Malformed("tcp phase tag")),
        };
        s.dup_acks = r.u32()?;
        s.recover = r.u64()?;
        s.retx_pending = r.opt(|r| {
            Ok(Segment {
                seq: r.u64()?,
                len: r.u32()?,
                is_retx: r.bool()?,
            })
        })?;
        s.rtt.srtt = r.opt(|r| r.f64())?;
        s.rtt.rttvar = r.f64()?;
        s.rtt.rto = r.f64()?;
        s.sample_seq = r.opt(|r| Ok((r.u64()?, r.time()?)))?;
        s.rto_deadline = r.opt(|r| r.time())?;
        s.retx_bytes = r.u64()?;
        s.timeouts = r.u64()?;
        s.last_rtt = r.opt(|r| r.dur())?;
        s.cubic.epoch_start = r.opt(|r| r.time())?;
        s.cubic.w_max = r.f64()?;
        s.cubic.k = r.f64()?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    #[test]
    fn initial_window_burst() {
        let mut s = TcpSender::new(cfg(), 1_000_000);
        let segs = s.emit(Time::ZERO);
        assert_eq!(segs.len(), 10);
        assert_eq!(segs[0].seq, 0);
        assert_eq!(s.in_flight(), 14_000);
        assert!(s.rto_deadline().is_some());
    }

    #[test]
    fn short_flow_fits_one_window() {
        let mut s = TcpSender::new(cfg(), 3_000);
        let segs = s.emit(Time::ZERO);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[2].len, 200);
        s.on_ack(Time::from_millis(50), 3_000);
        assert!(s.done());
        assert_eq!(s.rto_deadline(), None);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new(cfg(), 10_000_000);
        let w0 = s.cwnd();
        let segs = s.emit(Time::ZERO);
        for seg in &segs {
            s.on_ack(Time::from_millis(50), seg.seq + seg.len as u64);
        }
        assert!((s.cwnd() - 2.0 * w0).abs() < 1.0, "cwnd={}", s.cwnd());
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = TcpSender::new(cfg(), 1_000_000);
        let _ = s.emit(Time::ZERO);
        let w_before = s.cwnd();
        // First segment lost; later segments generate dupacks at cum=0...
        // but cum==snd_una==0 means in_flight>0 and dup count rises.
        for _ in 0..3 {
            s.on_ack(Time::from_millis(10), 0);
        }
        let segs = s.emit(Time::from_millis(11));
        assert!(segs.iter().any(|g| g.is_retx && g.seq == 0));
        assert!(s.cwnd() < w_before);
        assert!(s.retx_bytes > 0);
    }

    #[test]
    fn rto_resets_to_go_back_n() {
        let mut s = TcpSender::new(cfg(), 1_000_000);
        let _ = s.emit(Time::ZERO);
        let deadline = s.rto_deadline().unwrap();
        s.on_rto(deadline);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.cwnd(), 1400.0);
        let segs = s.emit(deadline);
        assert_eq!(segs[0].seq, 0, "go-back-N restarts at snd_una");
        // Backed-off RTO.
        assert!(s.rto_deadline().unwrap() > deadline);
    }

    #[test]
    fn full_transfer_completes_lossless() {
        let mut s = TcpSender::new(cfg(), 100_000);
        let mut now = Time::ZERO;
        let mut delivered = 0u64;
        let mut guard = 0;
        while !s.done() {
            guard += 1;
            assert!(guard < 1000, "must converge");
            let segs = s.emit(now);
            for seg in segs {
                delivered = delivered.max(seg.seq + seg.len as u64);
            }
            now += Dur::from_millis(20);
            s.on_ack(now, delivered);
        }
        assert_eq!(delivered, 100_000);
    }

    #[test]
    fn cubic_recovers_toward_wmax() {
        let mut s = TcpSender::new(cfg(), u64::MAX / 2);
        let mut now = Time::ZERO;
        // Grow to a sizable window.
        for _ in 0..12 {
            let segs = s.emit(now);
            let Some(last) = segs.last() else { break };
            let cum = last.seq + last.len as u64;
            now += Dur::from_millis(20);
            s.on_ack(now, cum);
        }
        let w_before_loss = s.cwnd();
        let _ = s.emit(now); // put data in flight so dupacks count
        for _ in 0..3 {
            s.on_ack(now, s.snd_una);
        }
        let w_after_loss = s.cwnd();
        assert!(w_after_loss < w_before_loss);
        // Exit recovery, then grow back via the cubic curve.
        let _ = s.emit(now);
        s.on_ack(now + Dur::from_millis(20), s.snd_nxt);
        let mut w = s.cwnd();
        // The cubic K for this drop is ~9 s of flow time; run past it.
        for i in 0..800 {
            let segs = s.emit(now);
            let cum = segs
                .last()
                .map(|g| g.seq + g.len as u64)
                .unwrap_or(s.snd_nxt);
            now += Dur::from_millis(20);
            s.on_ack(now, cum);
            w = s.cwnd();
            if w >= w_before_loss * 0.9 {
                break;
            }
            assert!(i < 799, "cubic must climb back toward w_max, w={w}");
        }
        assert!(w > w_after_loss);
    }

    #[test]
    fn reno_ca_is_linear_ish() {
        let mut c = cfg();
        c.algo = CcAlgo::Reno;
        let mut s = TcpSender::new(c, u64::MAX / 2);
        // Force CA.
        s.ssthresh = 2.0 * 1400.0;
        let mut now = Time::ZERO;
        let mut last = 0.0;
        for _ in 0..10 {
            let segs = s.emit(now);
            let cum = segs
                .last()
                .map(|g| g.seq + g.len as u64)
                .unwrap_or(s.snd_nxt);
            now += Dur::from_millis(20);
            s.on_ack(now, cum);
            let w = s.cwnd();
            assert!(w >= last);
            last = w;
        }
    }

    #[test]
    fn rtt_estimator_tracks_samples() {
        let mut s = TcpSender::new(cfg(), 1_000_000);
        let _ = s.emit(Time::ZERO);
        s.on_ack(Time::from_millis(30), 1400);
        assert_eq!(s.last_rtt, Some(Dur::from_millis(30)));
    }
}
