//! Deterministic pseudo-random number generation.
//!
//! All stochastic behaviour in the simulator — Poisson flow arrivals,
//! flow-size sampling, shadowing, fast fading, TCP jitter — draws from a
//! [`Rng`] that is explicitly seeded by the experiment configuration.
//! The generator is xoshiro256\*\* (Blackman & Vigna), implemented locally
//! so that the exact stream never changes underneath us when the `rand`
//! crate revs. `rand`'s distribution machinery still works with it through
//! the [`rand::RngCore`] impl.

use rand::RngCore;

/// xoshiro256\*\* generator with SplitMix64 seeding.
///
/// Cheap to fork: [`Rng::fork`] derives an independent child stream from a
/// label, which lets each UE / each subsystem own its own generator while
/// the whole simulation remains reproducible from a single root seed.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child generator from this one and a label.
    ///
    /// The label keeps forks structurally stable: adding a new subsystem
    /// fork does not shift the streams of existing subsystems, as long as
    /// their labels stay the same.
    pub fn fork(&self, label: u64) -> Rng {
        // Mix the current state with the label through SplitMix64 so the
        // child stream is decorrelated from the parent's future output.
        let mut sm = self
            .s
            .iter()
            .fold(label ^ 0xA076_1D64_78BD_642F, |acc, &w| {
                acc.wrapping_mul(0x0100_0000_01B3).wrapping_add(w)
            });
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Borrow the raw xoshiro256** state (checkpointing).
    pub fn state(&self) -> &[u64; 4] {
        &self.s
    }

    /// Rebuild a generator from a previously captured state. The state
    /// must not be all zeros (the one fixed point of xoshiro256**);
    /// callers restoring from a snapshot validate that before calling.
    pub fn from_state(s: [u64; 4]) -> Rng {
        debug_assert!(s != [0, 0, 0, 0], "all-zero xoshiro state");
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `(0, 1]` — safe input for `ln()`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform f64 in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)` (Lemire's method, unbiased enough for
    /// simulation purposes via rejection).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Simple rejection against the biased tail.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64_raw();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform usize index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

impl RngCore for Rng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64_raw().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            let o = r.f64_open();
            assert!(o > 0.0 && o <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = Rng::new(42);
        let mut a1 = root.fork(1);
        let mut a2 = root.fork(1);
        let mut b = root.fork(2);
        // Same label twice => identical stream.
        for _ in 0..100 {
            assert_eq!(a1.next_u64_raw(), a2.next_u64_raw());
        }
        // Different label => different stream.
        let mut a3 = root.fork(1);
        let same = (0..100)
            .filter(|_| a3.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rngcore_fill_bytes_covers_partial_chunks() {
        let mut r = Rng::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Non-zero with overwhelming probability.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_rate_tracks_p() {
        let mut r = Rng::new(77);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }
}
