//! A monotonic event queue with stable ordering for simultaneous events.
//!
//! The cell simulator is clocked: the xNodeB MAC runs every TTI. But flow
//! arrivals, TCP timers and wired-link deliveries happen at arbitrary
//! instants between TTIs. [`EventQueue`] merges both worlds: the main loop
//! drains all events up to the next TTI boundary, runs the TTI, repeats.
//!
//! Events scheduled for the same instant pop in FIFO order (insertion
//! order), which keeps runs reproducible regardless of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key(Time, u64);

/// Priority queue of `(Time, E)` pairs, popping earliest-first and FIFO
/// within an instant.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Key, EventBox<E>)>>,
    seq: u64,
}

/// Wrapper so `E` does not need `Ord`; ordering is fully determined by the
/// key, and the payload comparison is never reached.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at `at`.
    pub fn schedule(&mut self, at: Time, event: E) {
        let key = Key(at, self.seq);
        self.seq += 1;
        self.heap.push(Reverse((key, EventBox(event))));
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((Key(t, _), _))| *t)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap
            .pop()
            .map(|Reverse((Key(t, _), EventBox(e)))| (t, e))
    }

    /// Pop the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Current value of the insertion counter (checkpointing). The
    /// counter never resets, so restoring it keeps FIFO tie-breaking
    /// identical across a resume.
    pub fn seq_counter(&self) -> u64 {
        self.seq
    }

    /// Overwrite the insertion counter (checkpoint restore only).
    pub fn set_seq_counter(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// Schedule with an explicit sequence number (checkpoint restore
    /// only — normal scheduling must go through [`EventQueue::schedule`]).
    pub fn schedule_with_seq(&mut self, at: Time, seq: u64, event: E) {
        self.heap.push(Reverse((Key(at, seq), EventBox(event))));
    }

    /// All pending events in deterministic `(time, seq)` order, with
    /// their exact sequence numbers (checkpointing). The heap's internal
    /// layout is not deterministic; the sorted view is.
    pub fn sorted_entries(&self) -> Vec<(Time, u64, &E)> {
        let mut out: Vec<(Time, u64, &E)> = self
            .heap
            .iter()
            .map(|Reverse((Key(t, seq), EventBox(e)))| (*t, *seq, e))
            .collect();
        out.sort_by_key(|&(t, seq, _)| (t, seq));
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(5), "c");
        q.schedule(Time::from_millis(1), "a");
        q.schedule(Time::from_millis(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = Time::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(10), "later");
        q.schedule(Time::from_millis(1), "soon");
        assert_eq!(
            q.pop_due(Time::from_millis(5)).map(|(_, e)| e),
            Some("soon")
        );
        assert_eq!(q.pop_due(Time::from_millis(5)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_due(Time::from_millis(10)).map(|(_, e)| e),
            Some("later")
        );
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_millis(2), ());
        q.schedule(Time::from_millis(2) + Dur::from_nanos(1), ());
        assert_eq!(q.peek_time(), Some(Time::from_millis(2)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_millis(2));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(4), 4);
        q.schedule(Time::from_millis(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        q.schedule(Time::from_millis(1), 1); // earlier than remaining
        q.schedule(Time::from_millis(3), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }
}
