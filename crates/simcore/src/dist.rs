//! Samplers for the stochastic processes used in the evaluation.
//!
//! * [`Exponential`] — inter-arrival times of the Poisson flow-arrival
//!   processes used in §3, §6.1 and §6.2 of the paper.
//! * [`Poisson`] — counting distribution (used for burst sizing in the
//!   incast case study).
//! * [`Normal`] — Box–Muller; log-normal shadowing in the channel model.
//! * [`Empirical`] — inverse-CDF sampling of tabulated flow-size
//!   distributions (the LTE cellular distribution of Huang et al. \[41\],
//!   MIRAGE mobile-app \[12\], websearch \[13\]) with log-linear interpolation
//!   between knots, which matches how heavy-tailed size CDFs are usually
//!   digitised from published figures.

use crate::rng::Rng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create with rate `lambda` (> 0) events per unit.
    pub fn new(lambda: f64) -> Exponential {
        assert!(lambda > 0.0 && lambda.is_finite(), "lambda={lambda}");
        Exponential { lambda }
    }

    /// Create from the mean inter-arrival instead of the rate.
    pub fn from_mean(mean: f64) -> Exponential {
        Exponential::new(1.0 / mean)
    }

    /// Rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        -rng.f64_open().ln() / self.lambda
    }
}

/// Poisson counting distribution with mean `lambda`.
///
/// Uses Knuth's product method for small means and a normal approximation
/// above `lambda = 64` (counts in our workloads are small, so the
/// approximation path is rarely taken and accuracy there is not critical).
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create with mean `lambda` (> 0).
    pub fn new(lambda: f64) -> Poisson {
        assert!(lambda > 0.0 && lambda.is_finite(), "lambda={lambda}");
        Poisson { lambda }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.lambda < 64.0 {
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let n = Normal::new(self.lambda, self.lambda.sqrt());
            n.sample(rng).round().max(0.0) as u64
        }
    }
}

/// Normal distribution via Box–Muller (one value per draw; the antithetic
/// twin is discarded to keep the sampler stateless).
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Create with the given mean and standard deviation (sd >= 0).
    pub fn new(mean: f64, sd: f64) -> Normal {
        assert!(sd >= 0.0 && sd.is_finite(), "sd={sd}");
        Normal { mean, sd }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let u1 = rng.f64_open();
        let u2 = rng.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.sd * z
    }
}

/// Empirical distribution defined by CDF knots `(value, cum_prob)`.
///
/// Sampling inverts the CDF; between knots the value is interpolated
/// **geometrically** (linear in `log(value)`), which is the natural
/// interpolation for the heavy-tailed, orders-of-magnitude-spanning flow
/// size distributions in Figure 2(a) of the paper.
#[derive(Debug, Clone)]
pub struct Empirical {
    /// (value, cumulative probability), strictly increasing in both.
    knots: Vec<(f64, f64)>,
}

impl Empirical {
    /// Build from CDF knots. Requirements (checked):
    /// values > 0 and strictly increasing; probabilities strictly
    /// increasing, within (0, 1]; last probability == 1.0.
    pub fn from_cdf(knots: &[(f64, f64)]) -> Empirical {
        assert!(knots.len() >= 2, "need at least two CDF knots");
        for w in knots.windows(2) {
            assert!(w[0].0 < w[1].0, "values must increase: {w:?}");
            assert!(w[0].1 < w[1].1, "probs must increase: {w:?}");
        }
        for &(v, p) in knots {
            assert!(v > 0.0, "values must be positive, got {v}");
            assert!(p > 0.0 && p <= 1.0, "probs in (0,1], got {p}");
        }
        // outran-lint: allow(d5) -- `knots.len() >= 2` asserted at entry
        let last = knots.last().unwrap();
        assert!(
            (last.1 - 1.0).abs() < 1e-9,
            "last knot must close the CDF at 1.0, got {}",
            last.1
        );
        Empirical {
            knots: knots.to_vec(),
        }
    }

    /// Draw one sample by inverse-CDF with log-linear interpolation.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.quantile(rng.f64())
    }

    /// The value at cumulative probability `p` (0 ≤ p ≤ 1).
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let first = self.knots[0];
        if p <= first.1 {
            // Below the first knot: interpolate from a nominal minimum one
            // decade below the first knot value.
            let lo_v = first.0 * 0.1;
            let f = p / first.1;
            return (lo_v.ln() + f * (first.0.ln() - lo_v.ln())).exp();
        }
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if p <= p1 {
                let f = (p - p0) / (p1 - p0);
                return (v0.ln() + f * (v1.ln() - v0.ln())).exp();
            }
        }
        // outran-lint: allow(d5) -- constructor asserts >= 2 knots; the scan above returns for every p <= 1.0
        self.knots.last().unwrap().0
    }

    /// The CDF evaluated at `v` (inverse of [`Empirical::quantile`]).
    pub fn cdf(&self, v: f64) -> f64 {
        let first = self.knots[0];
        if v <= first.0 * 0.1 {
            return 0.0;
        }
        if v <= first.0 {
            let lo_v = first.0 * 0.1;
            let f = (v.ln() - lo_v.ln()) / (first.0.ln() - lo_v.ln());
            return f * first.1;
        }
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if v <= v1 {
                let f = (v.ln() - v0.ln()) / (v1.ln() - v0.ln());
                return p0 + f * (p1 - p0);
            }
        }
        1.0
    }

    /// Mean of the interpolated distribution, computed by numerical
    /// integration of the quantile function (10k-point midpoint rule —
    /// plenty for workload-calibration purposes).
    pub fn mean(&self) -> f64 {
        let n = 10_000;
        (0..n)
            .map(|i| self.quantile((i as f64 + 0.5) / n as f64))
            .sum::<f64>()
            / n as f64
    }

    /// The knots this distribution was built from.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean() {
        let d = Exponential::from_mean(0.25);
        let mut rng = Rng::new(1);
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "mean={mean}");
        assert!((d.lambda() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(1000.0);
        let mut rng = Rng::new(2);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn poisson_small_mean() {
        let d = Poisson::new(3.0);
        let mut rng = Rng::new(3);
        let n = 100_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_path() {
        let d = Poisson::new(400.0);
        let mut rng = Rng::new(4);
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 400.0).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(5.0, 2.0);
        let mut rng = Rng::new(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.02, "mean={mean}");
        assert!((var - 4.0).abs() < 0.1, "var={var}");
    }

    fn toy_cdf() -> Empirical {
        Empirical::from_cdf(&[(1e3, 0.5), (1e4, 0.9), (1e6, 1.0)])
    }

    #[test]
    fn empirical_quantile_hits_knots() {
        let d = toy_cdf();
        assert!((d.quantile(0.5) - 1e3).abs() < 1e-6);
        assert!((d.quantile(0.9) - 1e4).abs() < 1e-6);
        assert!((d.quantile(1.0) - 1e6).abs() < 1e-3);
    }

    #[test]
    fn empirical_cdf_inverts_quantile() {
        let d = toy_cdf();
        for p in [0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.999] {
            let v = d.quantile(p);
            assert!((d.cdf(v) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn empirical_sampling_matches_cdf() {
        let d = toy_cdf();
        let mut rng = Rng::new(6);
        let n = 100_000;
        let below_1k = (0..n).filter(|_| d.sample(&mut rng) <= 1e3).count();
        let frac = below_1k as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn empirical_mean_is_heavier_than_median() {
        // Heavy tail: mean far above the median.
        let d = toy_cdf();
        let mean = d.mean();
        assert!(mean > 5e3, "mean={mean}");
    }

    #[test]
    #[should_panic]
    fn empirical_rejects_unsorted() {
        let _ = Empirical::from_cdf(&[(1e4, 0.5), (1e3, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn empirical_rejects_open_cdf() {
        let _ = Empirical::from_cdf(&[(1e3, 0.5), (1e4, 0.9)]);
    }
}
