//! Streaming statistics primitives.
//!
//! * [`RunningStats`] — Welford mean/variance plus min/max, used for FCT
//!   aggregation and resource-usage summaries.
//! * [`Ewma`] — exponentially-weighted moving average. This is exactly the
//!   "long-term average throughput r̃_u(t)" of the PF per-RB metric in
//!   eq. (1) of the paper; the smoothing constant is derived from the
//!   *fairness window* T_f swept in the §6.3 ablation (Figure 18a/b).
//! * [`Percentiles`] — exact percentiles over a retained sample vector
//!   (the evaluation's sample counts — tens of thousands of flows — make
//!   exact retention cheap).

/// Welford online mean/variance with min/max tracking.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    pub(crate) n: u64,
    pub(crate) mean: f64,
    pub(crate) m2: f64,
    pub(crate) min: f64,
    pub(crate) max: f64,
}

impl RunningStats {
    /// Create an empty accumulator.
    pub fn new() -> RunningStats {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exponentially-weighted moving average with explicit smoothing factor.
///
/// `alpha` is the weight of the newest observation:
/// `avg ← (1 − α)·avg + α·x`. For a PF fairness window of `T_f` spanning
/// `N = T_f / TTI` scheduling intervals, use [`Ewma::from_window`], which
/// sets `α = 1/N` — the standard LTE PF formulation where T_f acts as the
/// averaging horizon (Girici et al. \[37\], Musleh et al. \[57\]).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    pub(crate) alpha: f64,
    pub(crate) value: f64,
    pub(crate) primed: bool,
}

impl Ewma {
    /// Create with the given smoothing factor `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha={alpha}");
        Ewma {
            alpha,
            value: 0.0,
            primed: false,
        }
    }

    /// Create from an averaging window of `n` updates (`alpha = 1/n`).
    pub fn from_window(n: u64) -> Ewma {
        Ewma::new(1.0 / n.max(1) as f64)
    }

    /// Smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Update with a new observation, returning the new average.
    ///
    /// The first observation initialises the average directly (avoids the
    /// cold-start bias of starting from zero).
    pub fn update(&mut self, x: f64) -> f64 {
        if self.primed {
            self.value += self.alpha * (x - self.value);
        } else {
            self.value = x;
            self.primed = true;
        }
        self.value
    }

    /// Fold in `k` zero observations at once — the composed equivalent
    /// of an idle span in a per-tick EWMA. Matches the semantics of `k`
    /// consecutive `update(0.0)` calls (the first primes an unprimed
    /// average at zero; primed averages decay geometrically), computed
    /// in O(1) so virtual-time skipping can batch arbitrarily long idle
    /// runs. Note the composed product `v·(1−α)^k` is the *definition*
    /// of the idle decay under skipping — both the dense and
    /// event-driven cell loops defer to this same composition at the
    /// next active tick, which is what keeps them bit-identical.
    pub fn decay(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        if self.primed {
            self.value *= (1.0 - self.alpha).powf(k as f64);
        } else {
            self.value = 0.0;
            self.primed = true;
        }
    }

    /// Current average (0 until the first update).
    pub fn get(&self) -> f64 {
        if self.primed {
            self.value
        } else {
            0.0
        }
    }

    /// Whether at least one observation was folded in.
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// Force the average to a specific value (used when initialising the
    /// PF average from a known rate to avoid a start-up transient).
    pub fn prime(&mut self, x: f64) {
        self.value = x;
        self.primed = true;
    }
}

/// Exact percentile computation over retained samples.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    pub(crate) samples: Vec<f64>,
    pub(crate) sorted: bool,
}

impl Percentiles {
    /// Create an empty collector.
    pub fn new() -> Percentiles {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of retained observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-th percentile (`0 ≤ p ≤ 100`) by nearest-rank with linear
    /// interpolation; NaN when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = p / 100.0 * (self.samples.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let f = rank - lo as f64;
            self.samples[lo] * (1.0 - f) + self.samples[hi] * f
        }
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Sample mean; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            f64::NAN
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Immutable view of the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Produce `(value, cum_prob)` CDF points suitable for plotting,
    /// down-sampled to at most `max_points`.
    pub fn cdf_points(&mut self, max_points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        // Sorting is needed; reuse percentile's lazy sort.
        let _ = self.percentile(0.0);
        let n = self.samples.len();
        let step = (n / max_points.max(1)).max(1);
        let mut out = Vec::with_capacity(n / step + 1);
        let mut i = 0;
        while i < n {
            out.push((self.samples[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(_, p)| p) != Some(1.0) {
            out.push((self.samples[n - 1], 1.0));
        }
        out
    }
}

/// Jain's fairness index over a slice of non-negative values — eq. (3) of
/// the paper: `(Σx)² / (n·Σx²)`. Returns 1.0 for an empty or all-zero
/// input (a degenerate allocation is trivially "fair").
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        xs[..37].iter().for_each(|&x| a.push(x));
        xs[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn ewma_first_update_primes() {
        let mut e = Ewma::new(0.1);
        assert!(!e.is_primed());
        assert_eq!(e.update(10.0), 10.0);
        let v = e.update(0.0);
        assert!((v - 9.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_window_convergence() {
        // With window n, a step input converges with time constant ~n.
        let mut e = Ewma::from_window(100);
        e.prime(0.0);
        for _ in 0..100 {
            e.update(1.0);
        }
        // After n updates, should be ~1 - 1/e = 0.632.
        assert!((e.get() - 0.634).abs() < 0.02, "got {}", e.get());
    }

    #[test]
    fn percentiles_exact_on_small_sets() {
        let mut p = Percentiles::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            p.push(x);
        }
        assert_eq!(p.percentile(0.0), 1.0);
        assert_eq!(p.percentile(100.0), 5.0);
        assert_eq!(p.median(), 3.0);
        assert_eq!(p.percentile(25.0), 2.0);
        assert!((p.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolates() {
        let mut p = Percentiles::new();
        p.push(0.0);
        p.push(10.0);
        assert!((p.percentile(50.0) - 5.0).abs() < 1e-12);
        assert!((p.percentile(99.0) - 9.9).abs() < 1e-12);
    }

    #[test]
    fn percentiles_empty_is_nan() {
        let mut p = Percentiles::new();
        assert!(p.percentile(50.0).is_nan());
        assert!(p.mean().is_nan());
        assert!(p.cdf_points(10).is_empty());
    }

    #[test]
    fn cdf_points_are_monotonic_and_closed() {
        let mut p = Percentiles::new();
        for i in 0..1000 {
            p.push((i % 97) as f64);
        }
        let pts = p.cdf_points(50);
        assert!(pts.len() <= 52);
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One user hogging everything among n users => 1/n.
        let idx = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn push_after_percentile_resorts() {
        let mut p = Percentiles::new();
        p.push(5.0);
        p.push(1.0);
        assert_eq!(p.percentile(0.0), 1.0);
        p.push(0.5);
        assert_eq!(p.percentile(0.0), 0.5);
    }
}
