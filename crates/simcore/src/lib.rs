//! # outran-simcore
//!
//! Deterministic discrete-event simulation primitives shared by every other
//! crate in the OutRAN reproduction.
//!
//! The OutRAN evaluation (CoNEXT '22) mixes per-TTI clocked processing at
//! the base station with asynchronous events (Poisson flow arrivals, TCP
//! retransmission timers, wired-link deliveries). This crate provides the
//! glue for both styles:
//!
//! * [`Time`] / [`Dur`] — integer-nanosecond virtual time. No floats, no
//!   `std::time`: simulations are bit-for-bit reproducible.
//! * [`Rng`] — a self-contained xoshiro256** generator seeded explicitly.
//!   We implement it ourselves (rather than relying on `rand::rngs::SmallRng`)
//!   so the stream is stable across `rand` versions and platforms.
//! * [`EventQueue`] — a monotonic priority queue of `(Time, E)` events with
//!   stable FIFO ordering for simultaneous events.
//! * [`dist`] — samplers used throughout the evaluation: exponential
//!   inter-arrivals (Poisson processes), empirical flow-size CDFs with
//!   log-linear interpolation, Box–Muller normals for shadowing.
//! * [`stats`] — running mean/variance, exponentially-weighted moving
//!   averages (the PF scheduler's long-term throughput `r̃_u`),
//!   and percentile helpers.
//!
//! Everything here is `no_std`-shaped in spirit (no I/O, no globals) but
//! uses `std` collections for simplicity, following smoltcp's "simplicity
//! and robustness over cleverness" ethos.

//!
//! # Example
//!
//! ```
//! use outran_simcore::{Empirical, EventQueue, Rng, Time};
//!
//! // Deterministic RNG + empirical CDF sampling.
//! let mut rng = Rng::new(42);
//! let cdf = Empirical::from_cdf(&[(1e3, 0.5), (1e5, 1.0)]);
//! let size = cdf.sample(&mut rng);
//! assert!(size > 0.0);
//!
//! // Event queue pops in time order, FIFO within an instant.
//! let mut q = EventQueue::new();
//! q.schedule(Time::from_millis(5), "later");
//! q.schedule(Time::from_millis(1), "sooner");
//! assert_eq!(q.pop().unwrap().1, "sooner");
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod events;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod time;

pub use dist::{Empirical, Exponential, Normal, Poisson};
pub use events::EventQueue;
pub use rng::Rng;
pub use snap::{fnv1a, write_atomic, SnapError, SnapReader, SnapWriter, SnapshotFile};
pub use stats::{Ewma, Percentiles, RunningStats};
pub use time::{Dur, Time};
