//! Crash-safe snapshot primitives: a hand-rolled, versioned, std-only
//! binary format for checkpointing simulator state.
//!
//! Long soaks (metro-scale scenarios, chaos endurance runs) are
//! multi-hour jobs; a panic or CI timeout must not throw the run away.
//! This module provides the byte-level plumbing every crate's snapshot
//! impl builds on:
//!
//! * [`SnapWriter`] / [`SnapReader`] — little-endian primitive codec.
//!   Floats travel as IEEE-754 bit patterns ([`f64::to_bits`]) so a
//!   round trip is bit-exact, which is what makes a resumed run
//!   *bit-identical* to an uninterrupted one rather than merely close.
//! * [`SnapshotFile`] — a container of named sections, each guarded by
//!   an FNV-1a digest, behind a magic number and a format version.
//! * [`write_atomic`] — temp-file + rename persistence so an
//!   interrupted writer never leaves a torn checkpoint behind.
//!
//! The format is deliberately not self-describing: readers must know
//! the layout (the version field exists so they can refuse layouts
//! they don't). Sections keep corruption localized and give resume
//! errors a name to point at.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

use crate::events::EventQueue;
use crate::rng::Rng;
use crate::stats::{Ewma, Percentiles, RunningStats};
use crate::time::{Dur, Time};

/// File magic: "ORSN" (OutRAN SNapshot).
pub const SNAP_MAGIC: [u8; 4] = *b"ORSN";

/// Current snapshot format version. Bump on ANY layout change — the
/// reader refuses other versions rather than misinterpreting bytes.
pub const SNAP_VERSION: u32 = 1;

/// Errors surfaced while reading or persisting a snapshot.
#[derive(Debug)]
pub enum SnapError {
    /// The buffer ended before the expected data.
    Truncated,
    /// The file does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The file's format version is not [`SNAP_VERSION`].
    BadVersion(u32),
    /// A section's stored digest does not match its payload.
    DigestMismatch(String),
    /// A required section is absent.
    MissingSection(String),
    /// Structurally invalid data (context in the message).
    Malformed(&'static str),
    /// Filesystem-level failure while persisting or loading.
    Io(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAP_VERSION})"
                )
            }
            SnapError::DigestMismatch(s) => write!(f, "section '{s}' failed its digest check"),
            SnapError::MissingSection(s) => write!(f, "section '{s}' missing"),
            SnapError::Malformed(what) => write!(f, "malformed snapshot data: {what}"),
            SnapError::Io(e) => write!(f, "snapshot i/o: {e}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit over a byte slice — the same digest the golden-trace
/// harness uses, cheap and std-only.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only little-endian encoder for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Fresh empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter { buf: Vec::new() }
    }

    /// Finished payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` (as `u64`; the simulator never exceeds that).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write a [`Time`] instant.
    pub fn time(&mut self, t: Time) {
        self.u64(t.as_nanos());
    }

    /// Write a [`Dur`] span.
    pub fn dur(&mut self, d: Dur) {
        self.u64(d.as_nanos());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write an `Option` via a presence byte plus the closure on `Some`.
    pub fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut SnapWriter, &T)) {
        match v {
            Some(x) => {
                self.bool(true);
                f(self, x);
            }
            None => self.bool(false),
        }
    }

    /// Write a sequence via a length prefix plus the closure per item.
    pub fn seq<T>(
        &mut self,
        items: impl ExactSizeIterator<Item = T>,
        mut f: impl FnMut(&mut SnapWriter, T),
    ) {
        self.usize(items.len());
        for it in items {
            f(self, it);
        }
    }
}

/// Cursor over a snapshot payload, mirroring [`SnapWriter`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Read a `usize`, erroring if it would overflow the platform.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Malformed("usize overflow"))
    }

    /// Read an `f64` from its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool`, rejecting non-canonical bytes.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed("bool byte")),
        }
    }

    /// Read a [`Time`].
    pub fn time(&mut self) -> Result<Time, SnapError> {
        Ok(Time::from_nanos(self.u64()?))
    }

    /// Read a [`Dur`].
    pub fn dur(&mut self) -> Result<Dur, SnapError> {
        Ok(Dur::from_nanos(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.usize()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::Malformed("utf-8 string"))
    }

    /// Read an `Option` via its presence byte.
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Read a length-prefixed sequence into a `Vec`.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let n = self.usize()?;
        // Guard against a corrupt length causing an absurd reservation:
        // each element needs at least one byte in this format.
        if n > self.buf.len() - self.pos {
            return Err(SnapError::Malformed("sequence length exceeds payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// A snapshot file: named, digest-guarded sections behind a magic and
/// a format version.
///
/// Layout (all integers little-endian):
///
/// ```text
/// magic "ORSN" | version u32 | section_count u32
/// per section: name (len-prefixed str) | payload_len u64 | fnv1a u64 | payload
/// ```
#[derive(Debug, Default)]
pub struct SnapshotFile {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotFile {
    /// Empty container.
    pub fn new() -> SnapshotFile {
        SnapshotFile {
            sections: Vec::new(),
        }
    }

    /// Append a named section from a finished writer.
    pub fn add(&mut self, name: &str, w: SnapWriter) {
        self.sections.push((name.to_string(), w.into_bytes()));
    }

    /// Borrow a section's payload by name.
    pub fn section(&self, name: &str) -> Result<&[u8], SnapError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
            .ok_or_else(|| SnapError::MissingSection(name.to_string()))
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Serialize the container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.buf.extend_from_slice(&SNAP_MAGIC);
        w.u32(SNAP_VERSION);
        w.u32(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            w.str(name);
            w.u64(payload.len() as u64);
            w.u64(fnv1a(payload));
            w.buf.extend_from_slice(payload);
        }
        w.into_bytes()
    }

    /// Parse a container from bytes, verifying magic, version and every
    /// section digest.
    pub fn from_bytes(bytes: &[u8]) -> Result<SnapshotFile, SnapError> {
        let mut r = SnapReader::new(bytes);
        if r.take(4)? != SNAP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.u32()?;
        if version != SNAP_VERSION {
            return Err(SnapError::BadVersion(version));
        }
        let count = r.u32()? as usize;
        let mut sections = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let name = r.str()?;
            let len = r.usize()?;
            let digest = r.u64()?;
            let payload = r.take(len)?.to_vec();
            if fnv1a(&payload) != digest {
                return Err(SnapError::DigestMismatch(name));
            }
            sections.push((name, payload));
        }
        Ok(SnapshotFile { sections })
    }

    /// Digest of the whole serialized container — two snapshots are
    /// bit-identical iff these match.
    pub fn digest(&self) -> u64 {
        fnv1a(&self.to_bytes())
    }

    /// Persist atomically to `path` (temp file in the same directory,
    /// fsync, then rename).
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapError> {
        write_atomic(path, &self.to_bytes())
    }

    /// Load and parse a snapshot file from disk.
    pub fn read_file(path: &Path) -> Result<SnapshotFile, SnapError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapError::Io(format!("read {}: {e}", path.display())))?;
        SnapshotFile::from_bytes(&bytes)
    }
}

/// Write `bytes` to `path` atomically: write to a sibling temp file,
/// fsync, then rename over the destination. A crash mid-write leaves
/// either the old file or nothing — never a torn one.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapError> {
    let io = |e: std::io::Error| SnapError::Io(format!("{}: {e}", path.display()));
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(io)?;
        }
    }
    let tmp = path.with_extension("tmp~");
    {
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Snapshot impls for simcore's own stateful types. These live here (same
// crate) so the types' fields can stay private.
// ---------------------------------------------------------------------------

impl Rng {
    /// The raw xoshiro256** state, for checkpointing.
    pub fn snap(&self, w: &mut SnapWriter) {
        for &word in self.state() {
            w.u64(word);
        }
    }

    /// Restore a generator from a checkpointed state.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<Rng, SnapError> {
        let s = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        if s == [0, 0, 0, 0] {
            return Err(SnapError::Malformed("all-zero rng state"));
        }
        Ok(Rng::from_state(s))
    }
}

impl RunningStats {
    /// Serialize the accumulator (exact bit patterns, including the
    /// ±infinity min/max sentinels of an empty accumulator).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.n);
        w.f64(self.mean);
        w.f64(self.m2);
        w.f64(self.min);
        w.f64(self.max);
    }

    /// Restore an accumulator.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<RunningStats, SnapError> {
        Ok(RunningStats {
            n: r.u64()?,
            mean: r.f64()?,
            m2: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
        })
    }
}

impl Ewma {
    /// Serialize the average, including the priming flag (an unprimed
    /// average must stay unprimed across a resume — `get()` masks the
    /// difference but `update()` does not).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.f64(self.alpha);
        w.f64(self.value);
        w.bool(self.primed);
    }

    /// Restore an average.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<Ewma, SnapError> {
        let alpha = r.f64()?;
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(SnapError::Malformed("ewma alpha out of range"));
        }
        Ok(Ewma {
            alpha,
            value: r.f64()?,
            primed: r.bool()?,
        })
    }
}

impl Percentiles {
    /// Serialize retained samples in their *current* order plus the
    /// lazy-sort flag: `percentile()` reorders samples in place, so
    /// capturing order is required for bit-identical resumption.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.bool(self.sorted);
        w.seq(self.samples.iter(), |w, &x| w.f64(x));
    }

    /// Restore a collector.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<Percentiles, SnapError> {
        let sorted = r.bool()?;
        let samples = r.seq(|r| r.f64())?;
        Ok(Percentiles { samples, sorted })
    }
}

impl<E> EventQueue<E> {
    /// Serialize pending events in deterministic `(time, seq)` order,
    /// preserving the exact sequence numbers and the allocation counter
    /// so a restored queue pops in the identical order and continues
    /// numbering where the original left off.
    pub fn snap_with(&self, w: &mut SnapWriter, mut f: impl FnMut(&mut SnapWriter, &E)) {
        w.u64(self.seq_counter());
        let entries = self.sorted_entries();
        w.usize(entries.len());
        for (t, seq, e) in entries {
            w.time(t);
            w.u64(seq);
            f(w, e);
        }
    }

    /// Restore a queue serialized with [`EventQueue::snap_with`].
    pub fn unsnap_with<'a>(
        r: &mut SnapReader<'a>,
        mut f: impl FnMut(&mut SnapReader<'a>) -> Result<E, SnapError>,
    ) -> Result<EventQueue<E>, SnapError> {
        let counter = r.u64()?;
        let n = r.usize()?;
        let mut q = EventQueue::new();
        for _ in 0..n {
            let t = r.time()?;
            let seq = r.u64()?;
            if seq >= counter {
                return Err(SnapError::Malformed("event seq beyond counter"));
            }
            let e = f(r)?;
            q.schedule_with_seq(t, seq, e);
        }
        q.set_seq_counter(counter);
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f64(std::f64::consts::PI);
        w.f64(f64::INFINITY);
        w.f64(f64::NAN);
        w.bool(true);
        w.str("hello snapshot");
        w.time(Time::from_millis(5));
        w.dur(Dur::from_micros(125));
        w.opt(&Some(9u64), |w, &v| w.u64(v));
        w.opt(&None::<u64>, |w, &v| w.u64(v));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello snapshot");
        assert_eq!(r.time().unwrap(), Time::from_millis(5));
        assert_eq!(r.dur().unwrap(), Dur::from_micros(125));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(9));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        assert!(matches!(r.u64(), Err(SnapError::Truncated)));
    }

    #[test]
    fn snapshot_file_roundtrip_and_digests() {
        let mut f = SnapshotFile::new();
        let mut w = SnapWriter::new();
        w.u64(123);
        f.add("meta", w);
        let mut w2 = SnapWriter::new();
        w2.str("cell");
        f.add("cell0", w2);
        let bytes = f.to_bytes();
        let back = SnapshotFile::from_bytes(&bytes).unwrap();
        assert_eq!(back.section_names(), vec!["meta", "cell0"]);
        let mut r = SnapReader::new(back.section("meta").unwrap());
        assert_eq!(r.u64().unwrap(), 123);
        assert!(matches!(
            back.section("nope"),
            Err(SnapError::MissingSection(_))
        ));
    }

    #[test]
    fn corruption_detected_by_section_digest() {
        let mut f = SnapshotFile::new();
        let mut w = SnapWriter::new();
        w.u64(0xABCD);
        f.add("meta", w);
        let mut bytes = f.to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // flip a payload byte
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapError::DigestMismatch(_))
        ));
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let f = SnapshotFile::new();
        let mut bytes = f.to_bytes();
        assert!(SnapshotFile::from_bytes(&bytes).is_ok());
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapError::BadMagic)
        ));
        let mut bytes2 = SnapshotFile::new().to_bytes();
        bytes2[4] = 99;
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes2),
            Err(SnapError::BadVersion(_))
        ));
    }

    #[test]
    fn rng_roundtrip_continues_identical_stream() {
        let mut a = Rng::new(0xFEED);
        for _ in 0..17 {
            a.next_u64_raw();
        }
        let mut w = SnapWriter::new();
        a.snap(&mut w);
        let bytes = w.into_bytes();
        let mut b = Rng::unsnap(&mut SnapReader::new(&bytes)).unwrap();
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn stats_roundtrip_bit_exact() {
        let mut s = RunningStats::new();
        for x in [1.5, -2.25, 7.0] {
            s.push(x);
        }
        let mut w = SnapWriter::new();
        s.snap(&mut w);
        let bytes = w.into_bytes();
        let t = RunningStats::unsnap(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(s.count(), t.count());
        assert_eq!(s.mean().to_bits(), t.mean().to_bits());
        assert_eq!(s.variance().to_bits(), t.variance().to_bits());

        let mut e = Ewma::new(0.125);
        e.update(3.0);
        e.update(1.0);
        let mut w = SnapWriter::new();
        e.snap(&mut w);
        let bytes = w.into_bytes();
        let e2 = Ewma::unsnap(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(e.get().to_bits(), e2.get().to_bits());
        assert_eq!(e.is_primed(), e2.is_primed());

        // Unprimed flag must survive.
        let u = Ewma::new(0.5);
        let mut w = SnapWriter::new();
        u.snap(&mut w);
        let bytes = w.into_bytes();
        assert!(!Ewma::unsnap(&mut SnapReader::new(&bytes))
            .unwrap()
            .is_primed());
    }

    #[test]
    fn percentiles_roundtrip_preserves_order_and_sort_flag() {
        let mut p = Percentiles::new();
        p.push(5.0);
        p.push(1.0);
        p.push(3.0);
        let mut w = SnapWriter::new();
        p.snap(&mut w);
        let bytes = w.into_bytes();
        let mut q = Percentiles::unsnap(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(p.samples(), q.samples());
        // Sorting after restore behaves identically.
        assert_eq!(p.percentile(50.0), q.percentile(50.0));
        assert_eq!(p.samples(), q.samples());
    }

    #[test]
    fn event_queue_roundtrip_preserves_pop_order_and_seq() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let t = Time::from_millis(3);
        q.schedule(t, 10);
        q.schedule(Time::from_millis(1), 20);
        q.schedule(t, 30); // same instant as the first — FIFO order matters
        let _ = q.pop(); // consume the earliest, counter keeps running
        let mut w = SnapWriter::new();
        q.snap_with(&mut w, |w, &e| w.u32(e));
        let bytes = w.into_bytes();
        let mut back = EventQueue::unsnap_with(&mut SnapReader::new(&bytes), |r| r.u32()).unwrap();
        assert_eq!(back.len(), 2);
        // New events in both queues get the same sequence numbers.
        q.schedule(t, 40);
        back.schedule(t, 40);
        let a: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let b: Vec<u32> = std::iter::from_fn(|| back.pop().map(|(_, e)| e)).collect();
        assert_eq!(a, b);
        assert_eq!(a, vec![10, 30, 40]);
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join("outran_snap_test");
        let path = dir.join("ckpt.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second-longer");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
