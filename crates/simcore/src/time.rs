//! Integer-nanosecond virtual time.
//!
//! The simulator never consults the wall clock: all timing is expressed as
//! [`Time`] (an instant since simulation start) and [`Dur`] (a span).
//! Nanosecond resolution comfortably covers the shortest scheduling
//! granularity in the paper (the 125 µs slot of 5G NR numerology 3,
//! Figure 5) while `u64` nanoseconds allow simulations of ~584 years.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Dur {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Dur((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor.
    pub const fn mul(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }

    /// Integer division by a factor.
    pub const fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant of virtual time: nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);

    /// The largest representable instant (used as "never").
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from nanoseconds since start.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Construct from milliseconds since start.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Construct from whole seconds since start.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Nanoseconds since start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds since start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`. Panics when `earlier` is later
    /// than `self` — in a monotonic simulation that indicates a logic bug
    /// and we want to hear about it immediately.
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        Dur(self.0 - earlier.0)
    }

    /// Elapsed duration since `earlier`, clamping to zero instead of
    /// panicking.
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign<Dur> for Time {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Sub for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        self.since(rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Dur::from_micros(125).as_nanos(), 125_000);
        assert_eq!(Dur::from_millis(1).as_micros(), 1_000);
        assert_eq!(Dur::from_secs(2).as_millis(), 2_000);
        assert_eq!(Dur::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(Time::from_millis(3).as_nanos(), 3_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_millis(10) + Dur::from_micros(500);
        assert_eq!(t.as_nanos(), 10_500_000);
        assert_eq!(t.since(Time::from_millis(10)), Dur::from_micros(500));
        assert_eq!(t - Time::from_millis(10), Dur::from_micros(500));
        let mut t2 = t;
        t2 += Dur::from_micros(500);
        assert_eq!(t2, Time::from_millis(11));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            Time::from_millis(1).saturating_since(Time::from_millis(5)),
            Dur::ZERO
        );
        assert_eq!(
            Dur::from_millis(1).saturating_sub(Dur::from_millis(9)),
            Dur::ZERO
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Dur::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::from_micros(125)), "125.000us");
        assert_eq!(format!("{}", Dur::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", Dur::from_secs(3)), "3.000s");
    }

    #[test]
    fn tti_constants_fit() {
        // Paper Fig 5: numerology 0..=3 slot lengths.
        for (mu, us) in [(0u32, 1000u64), (1, 500), (2, 250), (3, 125)] {
            let slot = Dur::from_micros(us);
            assert_eq!(slot.as_micros(), 1000 >> mu);
        }
    }

    // The guard is a debug_assert, so the panic only exists in debug
    // builds; under --release the test would fail for the wrong reason.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn since_panics_on_backwards_time() {
        // debug_assert only fires in debug builds, which tests are.
        let _ = Time::from_millis(1).since(Time::from_millis(2));
    }
}
