//! Per-cell telemetry: spectral efficiency, fairness, queueing delay.

use outran_simcore::stats::jain_fairness;
use outran_simcore::{Dur, Ewma, Percentiles, RunningStats};

/// Collects per-TTI cell-level measurements.
///
/// * **Spectral efficiency** — delivered bits ÷ (bandwidth × time), in
///   bit/s/Hz, sampled over windows of `sample_ttis` TTIs ("the CDF of
///   the spectral efficiency and fairness values obtained from the
///   xNodeB for every 50 TTIs", Fig 7).
/// * **Fairness** — Jain's index (eq. 3) over per-UE service within the
///   sampling window, computed over the UEs that *had data queued*
///   during the window (demand-aware: an idle UE has no throughput to be
///   fair about, while a backlogged-but-starved UE drags the index down
///   — which is exactly how SRJF's 47 % fairness collapse in Fig 4b
///   manifests). A long-term `r̃_u` EWMA is also kept for diagnostics.
/// * **Queueing delay** — sojourn of each SDU in the RLC buffer, split
///   by short-flow membership (the Fig 17 ②/③ columns).
#[derive(Debug, Clone)]
pub struct CellMetrics {
    bandwidth_hz: f64,
    tti: Dur,
    sample_ttis: u32,
    tti_in_window: u32,
    bits_in_window: f64,
    window_ue_bits: Vec<f64>,
    window_ue_active: Vec<bool>,
    se_samples: Percentiles,
    fairness_samples: Percentiles,
    se_series: Vec<f64>,
    fairness_series: Vec<f64>,
    ue_avg: Vec<Ewma>,
    total_bits: f64,
    total_ttis: u64,
    qdelay_all: RunningStats,
    qdelay_short: RunningStats,
    qdelay_short_p: Percentiles,
}

impl CellMetrics {
    /// Create for a cell of `bandwidth_hz`, `n_ues` UEs, TTI length
    /// `tti`; SE/fairness sampled every `sample_ttis` (paper: 50) with
    /// the fairness window `tf` for `r̃_u`.
    pub fn new(
        bandwidth_hz: f64,
        n_ues: usize,
        tti: Dur,
        sample_ttis: u32,
        tf: Dur,
    ) -> CellMetrics {
        let window = (tf.as_nanos() / tti.as_nanos()).max(1);
        CellMetrics {
            bandwidth_hz,
            tti,
            sample_ttis: sample_ttis.max(1),
            tti_in_window: 0,
            bits_in_window: 0.0,
            window_ue_bits: vec![0.0; n_ues],
            window_ue_active: vec![false; n_ues],
            se_samples: Percentiles::new(),
            fairness_samples: Percentiles::new(),
            se_series: Vec::new(),
            fairness_series: Vec::new(),
            ue_avg: vec![Ewma::from_window(window); n_ues],
            total_bits: 0.0,
            total_ttis: 0,
            qdelay_all: RunningStats::new(),
            qdelay_short: RunningStats::new(),
            qdelay_short_p: Percentiles::new(),
        }
    }

    /// Record one TTI's delivered bits per UE. `had_data[u]` reports
    /// whether UE `u` had anything queued this TTI (the demand mask the
    /// fairness sample is computed over).
    pub fn on_tti(&mut self, delivered_bits_per_ue: &[f64], had_data: &[bool]) {
        let total: f64 = delivered_bits_per_ue.iter().sum();
        self.total_bits += total;
        self.total_ttis += 1;
        self.bits_in_window += total;
        self.tti_in_window += 1;
        for (u, (avg, &b)) in self
            .ue_avg
            .iter_mut()
            .zip(delivered_bits_per_ue)
            .enumerate()
        {
            avg.update(b);
            self.window_ue_bits[u] += b;
            if had_data.get(u).copied().unwrap_or(false) {
                self.window_ue_active[u] = true;
            }
        }
        if self.tti_in_window >= self.sample_ttis {
            let window_secs = self.tti.as_secs_f64() * self.tti_in_window as f64;
            let se = self.bits_in_window / (window_secs * self.bandwidth_hz);
            self.se_samples.push(se);
            self.se_series.push(se);
            // Fairness over the service received within the window by
            // the UEs that had demand in it (skip windows with at most
            // one demanding UE — fairness is undefined there). A
            // backlogged-but-starved UE contributes a zero and drags the
            // index down, which is how SRJF's fairness collapse (Fig 4b)
            // registers.
            let demanded: Vec<f64> = self
                .window_ue_bits
                .iter()
                .zip(&self.window_ue_active)
                .filter(|(_, &a)| a)
                .map(|(&b, _)| b)
                .collect();
            if demanded.len() >= 2 {
                let f = jain_fairness(&demanded);
                self.fairness_samples.push(f);
                self.fairness_series.push(f);
            }
            self.tti_in_window = 0;
            self.bits_in_window = 0.0;
            self.window_ue_bits.iter_mut().for_each(|b| *b = 0.0);
            self.window_ue_active.iter_mut().for_each(|a| *a = false);
        }
    }

    /// Account for `k` idle TTIs in which nothing was queued or served.
    ///
    /// Only wall-clock accounting moves: `total_ttis` (the denominator of
    /// [`CellMetrics::spectral_efficiency`]) grows by `k`, while the
    /// 50-TTI SE/fairness sampling windows and the per-UE EWMAs are
    /// frozen — an all-zero TTI carries no service to smooth or be fair
    /// about. Both the dense and event-driven cell loops call this for
    /// idle TTIs, so the two modes book identical metrics.
    pub fn note_idle_ttis(&mut self, k: u64) {
        self.total_ttis += k;
    }

    /// Jain's index over the long-term `r̃_u` of UEs with any accumulated
    /// service (diagnostics; the windowed samples drive the reports).
    pub fn fairness_now(&self) -> f64 {
        let tputs: Vec<f64> = self
            .ue_avg
            .iter()
            .map(|e| e.get())
            .filter(|&x| x > 0.0)
            .collect();
        jain_fairness(&tputs)
    }

    /// Record the RLC-buffer sojourn of one delivered SDU.
    pub fn on_queue_delay(&mut self, delay: Dur, short_flow: bool) {
        let ms = delay.as_millis_f64();
        self.qdelay_all.push(ms);
        if short_flow {
            self.qdelay_short.push(ms);
            self.qdelay_short_p.push(ms);
        }
    }

    /// Long-run spectral efficiency over the whole run (bit/s/Hz).
    pub fn spectral_efficiency(&self) -> f64 {
        if self.total_ttis == 0 {
            return 0.0;
        }
        let secs = self.tti.as_secs_f64() * self.total_ttis as f64;
        self.total_bits / (secs * self.bandwidth_hz)
    }

    /// Mean of the windowed fairness samples.
    pub fn mean_fairness(&mut self) -> f64 {
        if self.fairness_samples.is_empty() {
            return f64::NAN;
        }
        self.fairness_samples.mean()
    }

    /// CDF of windowed SE samples (Fig 7a).
    pub fn se_cdf(&mut self, max_points: usize) -> Vec<(f64, f64)> {
        self.se_samples.cdf_points(max_points)
    }

    /// CDF of windowed fairness samples (Fig 7b).
    pub fn fairness_cdf(&mut self, max_points: usize) -> Vec<(f64, f64)> {
        self.fairness_samples.cdf_points(max_points)
    }

    /// Windowed SE samples in time order (Fig 4a's time series).
    pub fn se_series(&self) -> &[f64] {
        &self.se_series
    }

    /// Windowed fairness samples in time order (Fig 4b's time series).
    pub fn fairness_series(&self) -> &[f64] {
        &self.fairness_series
    }

    /// Mean queueing delay over all SDUs (ms) — Fig 17 ②.
    pub fn mean_qdelay_ms(&self) -> f64 {
        self.qdelay_all.mean()
    }

    /// Mean queueing delay of short-flow SDUs (ms) — Fig 17 ③.
    pub fn short_qdelay_ms(&self) -> f64 {
        self.qdelay_short.mean()
    }

    /// Percentile of short-flow queueing delay (ms).
    pub fn short_qdelay_percentile(&mut self, p: f64) -> f64 {
        self.qdelay_short_p.percentile(p)
    }

    /// Total bits delivered.
    pub fn total_bits(&self) -> f64 {
        self.total_bits
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl CellMetrics {
    /// Serialize the dynamic telemetry state (checkpointing). The
    /// configuration-derived fields (`bandwidth_hz`, `tti`,
    /// `sample_ttis`) are re-established by constructing from the run
    /// config before [`CellMetrics::load_snap`].
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u32(self.tti_in_window);
        w.f64(self.bits_in_window);
        w.seq(self.window_ue_bits.iter(), |w, &b| w.f64(b));
        w.seq(self.window_ue_active.iter(), |w, &a| w.bool(a));
        self.se_samples.snap(w);
        self.fairness_samples.snap(w);
        w.seq(self.se_series.iter(), |w, &v| w.f64(v));
        w.seq(self.fairness_series.iter(), |w, &v| w.f64(v));
        w.seq(self.ue_avg.iter(), |w, e| e.snap(w));
        w.f64(self.total_bits);
        w.u64(self.total_ttis);
        self.qdelay_all.snap(w);
        self.qdelay_short.snap(w);
        self.qdelay_short_p.snap(w);
    }

    /// Overwrite this collector's dynamic state from
    /// [`CellMetrics::snap`] output (UE count is checked).
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.tti_in_window = r.u32()?;
        self.bits_in_window = r.f64()?;
        let window_ue_bits = r.seq(|r| r.f64())?;
        let window_ue_active = r.seq(|r| r.bool())?;
        let ue_n = self.window_ue_bits.len();
        if window_ue_bits.len() != ue_n || window_ue_active.len() != ue_n {
            return Err(SnapError::Malformed(
                "UE count mismatch in metrics snapshot",
            ));
        }
        self.window_ue_bits = window_ue_bits;
        self.window_ue_active = window_ue_active;
        self.se_samples = Percentiles::unsnap(r)?;
        self.fairness_samples = Percentiles::unsnap(r)?;
        self.se_series = r.seq(|r| r.f64())?;
        self.fairness_series = r.seq(|r| r.f64())?;
        let ue_avg = r.seq(Ewma::unsnap)?;
        if ue_avg.len() != ue_n {
            return Err(SnapError::Malformed("UE count mismatch in metrics EWMAs"));
        }
        self.ue_avg = ue_avg;
        self.total_bits = r.f64()?;
        self.total_ttis = r.u64()?;
        self.qdelay_all = RunningStats::unsnap(r)?;
        self.qdelay_short = RunningStats::unsnap(r)?;
        self.qdelay_short_p = Percentiles::unsnap(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CellMetrics {
        CellMetrics::new(20e6, 4, Dur::from_millis(1), 50, Dur::from_millis(200))
    }

    const ALL: [bool; 4] = [true; 4];

    #[test]
    fn spectral_efficiency_math() {
        let mut c = m();
        // 20 MHz, 1 ms TTI: 40 kbit/TTI => 2 bit/s/Hz.
        for _ in 0..100 {
            c.on_tti(&[10_000.0, 10_000.0, 10_000.0, 10_000.0], &ALL);
        }
        assert!((c.spectral_efficiency() - 2.0).abs() < 1e-9);
        let cdf = c.se_cdf(10);
        assert!(!cdf.is_empty());
        assert!((cdf[0].0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn starved_demanding_ues_tank_fairness() {
        // All four UEs have data, only one is served (SRJF-like): the
        // windowed fairness sample must approach 1/4.
        let mut c = m();
        for _ in 0..100 {
            c.on_tti(&[40_000.0, 0.0, 0.0, 0.0], &ALL);
        }
        let f = c.mean_fairness();
        assert!((f - 0.25).abs() < 1e-9, "f={f}");
    }

    #[test]
    fn idle_ues_do_not_tank_fairness() {
        // Only UE 0 has data and is served: nothing unfair happened.
        let mut c = m();
        for _ in 0..100 {
            c.on_tti(&[40_000.0, 0.0, 0.0, 0.0], &[true, false, false, false]);
        }
        // Fewer than two demanding UEs => no fairness samples at all.
        assert!(c.mean_fairness().is_nan());
    }

    #[test]
    fn skewed_service_detected() {
        let mut c2 = m();
        for i in 0..100 {
            // Serve UE 0 three times as often; both demand always.
            if i % 4 == 0 {
                c2.on_tti(&[0.0, 10_000.0, 0.0, 0.0], &[true, true, false, false]);
            } else {
                c2.on_tti(&[10_000.0, 0.0, 0.0, 0.0], &[true, true, false, false]);
            }
        }
        let f = c2.mean_fairness();
        assert!(f < 0.95, "f={f}");
        assert!(f > 0.5, "f={f}");
    }

    #[test]
    fn equal_service_is_fair() {
        let mut c = m();
        for _ in 0..200 {
            c.on_tti(&[5_000.0; 4], &ALL);
        }
        assert!((c.fairness_now() - 1.0).abs() < 1e-9);
        assert!((c.mean_fairness() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn qdelay_split_by_bucket() {
        let mut c = m();
        c.on_queue_delay(Dur::from_millis(10), true);
        c.on_queue_delay(Dur::from_millis(30), true);
        c.on_queue_delay(Dur::from_millis(100), false);
        assert!((c.short_qdelay_ms() - 20.0).abs() < 1e-9);
        assert!((c.mean_qdelay_ms() - 140.0 / 3.0).abs() < 1e-9);
        assert!(c.short_qdelay_percentile(100.0) >= 30.0);
    }

    #[test]
    fn sampling_window_boundary() {
        let mut c = m();
        for _ in 0..49 {
            c.on_tti(&[1000.0; 4], &ALL);
        }
        assert!(c.se_cdf(10).is_empty(), "no full window yet");
        c.on_tti(&[1000.0; 4], &ALL);
        assert_eq!(c.se_cdf(10).len(), 1);
    }
}
