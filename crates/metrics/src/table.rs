//! Plain-text table and series renderers for the bench binaries.
//!
//! Every experiment binary prints its results through these helpers so
//! the output lines up with the corresponding paper table/figure and can
//! be diffed between runs.

use std::fmt::Write as _;

/// A simple fixed-width ASCII table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of display-able values.
    pub fn rowd(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Table {
        let rendered: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&rendered)
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!(" {c:>w$} "))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(out, "{line}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format a float with 1 decimal, rendering NaN as "-".
pub fn f1(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.1}")
    }
}

/// Format a float with 2 decimals, rendering NaN as "-".
pub fn f2(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.2}")
    }
}

/// Format a float with 3 decimals, rendering NaN as "-".
pub fn f3(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.3}")
    }
}

/// Print an (x, y) series as a compact two-column listing with a name —
/// the textual equivalent of one figure curve.
pub fn print_series(name: &str, points: &[(f64, f64)], max_rows: usize) {
    println!("-- series: {name} ({} points) --", points.len());
    let step = (points.len() / max_rows.max(1)).max(1);
    for (i, (x, y)) in points.iter().enumerate() {
        if i % step == 0 || i == points.len() - 1 {
            println!("  {x:>12.4}  {y:>8.4}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1.0".into()]);
        t.row(&["long-name".into(), "22.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        // Rows aligned: both data lines have same length.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(f64::NAN), "-");
        assert_eq!(f3(0.12345), "0.123");
    }

    #[test]
    fn rowd_renders_display() {
        let mut t = Table::new("d", &["a", "b"]);
        t.rowd(&[&42, &"x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("42"));
    }
}
