//! # outran-metrics
//!
//! Measurement machinery for the evaluation:
//!
//! * [`fct`] — flow completion time collection with the paper's size
//!   buckets: S = (0, 10 KB], M = (10 KB, 0.1 MB], L = (0.1 MB, ∞)
//!   (Figure 15 captions), means and percentiles per bucket.
//! * [`cell`] — per-TTI cell telemetry: spectral efficiency (bit/s/Hz)
//!   and Jain's fairness index of the long-term average per-UE
//!   throughput (eq. 3), sampled every 50 TTIs as in Figure 7; plus
//!   queueing-delay accounting for the Figure 17 columns.
//! * [`table`] — plain-text table/series renderers so each bench binary
//!   prints rows directly comparable to the paper's tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod fct;
pub mod table;

pub use cell::CellMetrics;
pub use fct::{FctCollector, FctReport, SizeBucket};
pub use table::Table;
