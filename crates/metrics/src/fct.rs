//! Flow completion time collection.

use outran_simcore::{Dur, Percentiles};

/// The paper's flow-size buckets (Figure 15):
/// S = (0, 10 KB], M = (10 KB, 0.1 MB], L = (0.1 MB, ∞).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeBucket {
    /// Short flows — the latency-sensitive target class.
    Short,
    /// Medium flows.
    Medium,
    /// Long flows (heavy hitters).
    Long,
}

impl SizeBucket {
    /// Bucket for a flow of `bytes`.
    pub fn of(bytes: u64) -> SizeBucket {
        if bytes <= 10_000 {
            SizeBucket::Short
        } else if bytes <= 100_000 {
            SizeBucket::Medium
        } else {
            SizeBucket::Long
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SizeBucket::Short => "S (0,10KB]",
            SizeBucket::Medium => "M (10KB,0.1MB]",
            SizeBucket::Long => "L (0.1MB,inf)",
        }
    }
}

/// Collects (flow size, FCT) pairs and summarises per bucket.
#[derive(Debug, Clone, Default)]
pub struct FctCollector {
    all: Percentiles,
    short: Percentiles,
    medium: Percentiles,
    long: Percentiles,
}

impl FctCollector {
    /// Create an empty collector.
    pub fn new() -> FctCollector {
        FctCollector::default()
    }

    /// Record one completed flow.
    pub fn record(&mut self, bytes: u64, fct: Dur) {
        let ms = fct.as_millis_f64();
        self.all.push(ms);
        match SizeBucket::of(bytes) {
            SizeBucket::Short => self.short.push(ms),
            SizeBucket::Medium => self.medium.push(ms),
            SizeBucket::Long => self.long.push(ms),
        }
    }

    /// Number of completed flows recorded.
    pub fn count(&self) -> usize {
        self.all.count()
    }

    /// Per-bucket sample counts (S, M, L).
    pub fn bucket_counts(&self) -> (usize, usize, usize) {
        (self.short.count(), self.medium.count(), self.long.count())
    }

    /// Produce the summary report (milliseconds).
    pub fn report(&mut self) -> FctReport {
        FctReport {
            count: self.all.count(),
            overall_mean_ms: self.all.mean(),
            overall_p99_ms: self.all.percentile(99.0),
            short_mean_ms: self.short.mean(),
            short_p95_ms: self.short.percentile(95.0),
            short_p99_ms: self.short.percentile(99.0),
            medium_mean_ms: self.medium.mean(),
            long_mean_ms: self.long.mean(),
        }
    }

    /// CDF points of a bucket's FCT (ms), for figure-style output.
    pub fn cdf(&mut self, bucket: Option<SizeBucket>, max_points: usize) -> Vec<(f64, f64)> {
        match bucket {
            None => self.all.cdf_points(max_points),
            Some(SizeBucket::Short) => self.short.cdf_points(max_points),
            Some(SizeBucket::Medium) => self.medium.cdf_points(max_points),
            Some(SizeBucket::Long) => self.long.cdf_points(max_points),
        }
    }

    /// Percentile of a bucket (ms).
    pub fn percentile(&mut self, bucket: Option<SizeBucket>, p: f64) -> f64 {
        match bucket {
            None => self.all.percentile(p),
            Some(SizeBucket::Short) => self.short.percentile(p),
            Some(SizeBucket::Medium) => self.medium.percentile(p),
            Some(SizeBucket::Long) => self.long.percentile(p),
        }
    }
}

/// The summary a bench binary prints as one table row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FctReport {
    /// Completed flows.
    pub count: usize,
    /// Mean FCT over all flows (ms) — Fig 15(a)'s "Overall Average".
    pub overall_mean_ms: f64,
    /// 99th percentile over all flows (ms).
    pub overall_p99_ms: f64,
    /// Mean FCT of short flows (ms).
    pub short_mean_ms: f64,
    /// 95th percentile of short flows (ms) — Fig 15(b).
    pub short_p95_ms: f64,
    /// 99th percentile of short flows (ms) — Fig 3(a).
    pub short_p99_ms: f64,
    /// Mean FCT of medium flows (ms) — Fig 15(c).
    pub medium_mean_ms: f64,
    /// Mean FCT of long flows (ms) — Fig 15(d).
    pub long_mean_ms: f64,
}

impl FctReport {
    /// Short-flow mean (convenience used in docs/examples).
    pub fn short_mean_ms(&self) -> f64 {
        self.short_mean_ms
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl FctCollector {
    /// Serialize the collector (checkpointing).
    pub fn snap(&self, w: &mut SnapWriter) {
        self.all.snap(w);
        self.short.snap(w);
        self.medium.snap(w);
        self.long.snap(w);
    }

    /// Restore a collector from [`FctCollector::snap`] output.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<FctCollector, SnapError> {
        Ok(FctCollector {
            all: Percentiles::unsnap(r)?,
            short: Percentiles::unsnap(r)?,
            medium: Percentiles::unsnap(r)?,
            long: Percentiles::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_match_paper_boundaries() {
        assert_eq!(SizeBucket::of(1), SizeBucket::Short);
        assert_eq!(SizeBucket::of(10_000), SizeBucket::Short);
        assert_eq!(SizeBucket::of(10_001), SizeBucket::Medium);
        assert_eq!(SizeBucket::of(100_000), SizeBucket::Medium);
        assert_eq!(SizeBucket::of(100_001), SizeBucket::Long);
    }

    #[test]
    fn report_aggregates_correctly() {
        let mut c = FctCollector::new();
        c.record(5_000, Dur::from_millis(10)); // S
        c.record(5_000, Dur::from_millis(30)); // S
        c.record(50_000, Dur::from_millis(100)); // M
        c.record(1_000_000, Dur::from_millis(1000)); // L
        let r = c.report();
        assert_eq!(r.count, 4);
        assert!((r.short_mean_ms - 20.0).abs() < 1e-9);
        assert!((r.medium_mean_ms - 100.0).abs() < 1e-9);
        assert!((r.long_mean_ms - 1000.0).abs() < 1e-9);
        assert!((r.overall_mean_ms - 285.0).abs() < 1e-9);
        assert_eq!(c.bucket_counts(), (2, 1, 1));
    }

    #[test]
    fn empty_buckets_are_nan_not_panic() {
        let mut c = FctCollector::new();
        c.record(5_000, Dur::from_millis(10));
        let r = c.report();
        assert!(r.medium_mean_ms.is_nan());
        assert!(r.long_mean_ms.is_nan());
        assert!(!r.short_mean_ms.is_nan());
    }

    #[test]
    fn percentiles_per_bucket() {
        let mut c = FctCollector::new();
        for i in 1..=100u64 {
            c.record(1_000, Dur::from_millis(i));
        }
        assert!((c.percentile(Some(SizeBucket::Short), 95.0) - 95.05).abs() < 0.1);
        let cdf = c.cdf(Some(SizeBucket::Short), 10);
        assert!(cdf.len() >= 10);
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }
}
